// Package merkle implements an RFC 6962-style Merkle hash tree with
// contiguous-range proofs, the integrity mechanism behind the paper's
// trust challenge: "the results returned by the service provider are indeed
// the exact answers to the user queries" (completeness and correctness).
//
// A provider maintains one tree per indexed share column, with leaves in
// index-key order. To answer a range scan verifiably it returns the
// matching leaf run plus its two fence leaves and a proof consisting of the
// hashes of the maximal subtrees outside the run. The client recomputes the
// root; if it matches a root obtained earlier (or cross-checked against
// other providers), the provider can neither drop rows inside the range nor
// inject rows that were never outsourced.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// HashSize is the digest width in bytes.
const HashSize = sha256.Size

// Hash is a node or leaf digest.
type Hash [HashSize]byte

// Domain-separation prefixes (RFC 6962).
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// ErrBadProof reports a proof that does not fit the claimed shape.
var ErrBadProof = errors.New("merkle: malformed proof")

// LeafHash hashes a leaf's content: the index key and a digest of the row
// it points at.
func LeafHash(key, rowDigest []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(key)))
	h.Write(lenBuf[:])
	h.Write(key)
	h.Write(rowDigest)
	var out Hash
	h.Sum(out[:0])
	return out
}

func nodeHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// emptyRoot is the hash of the empty tree.
func emptyRoot() Hash { return sha256.Sum256(nil) }

// splitPoint returns the largest power of two strictly less than n (n >= 2).
func splitPoint(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// Tree is a Merkle tree over an ordered leaf sequence.
type Tree struct {
	leaves []Hash
}

// New builds a tree over the given leaf hashes (copied).
func New(leaves []Hash) *Tree {
	return &Tree{leaves: append([]Hash(nil), leaves...)}
}

// Len returns the number of leaves.
func (t *Tree) Len() int { return len(t.leaves) }

// Root computes the tree root.
func (t *Tree) Root() Hash {
	return subtreeRoot(t.leaves)
}

func subtreeRoot(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return emptyRoot()
	case 1:
		return leaves[0]
	default:
		k := splitPoint(len(leaves))
		return nodeHash(subtreeRoot(leaves[:k]), subtreeRoot(leaves[k:]))
	}
}

// ProveRange produces the proof for the contiguous leaf run [start, end):
// the root hashes of every maximal subtree disjoint from the run, in the
// deterministic order the verification recursion consumes them.
func (t *Tree) ProveRange(start, end int) ([]Hash, error) {
	if start < 0 || end < start || end > len(t.leaves) {
		return nil, fmt.Errorf("%w: range [%d,%d) of %d leaves", ErrBadProof, start, end, len(t.leaves))
	}
	var proof []Hash
	var walk func(leaves []Hash, lo int)
	walk = func(leaves []Hash, lo int) {
		hi := lo + len(leaves)
		if hi <= start || lo >= end {
			// Entirely outside the run: emit one subtree hash.
			proof = append(proof, subtreeRoot(leaves))
			return
		}
		if lo >= start && hi <= end {
			// Entirely inside: verifier recomputes from supplied leaves.
			return
		}
		k := splitPoint(len(leaves))
		walk(leaves[:k], lo)
		walk(leaves[k:], lo+k)
	}
	if len(t.leaves) > 0 && start < end {
		walk(t.leaves, 0)
	} else if len(t.leaves) > 0 {
		// Empty run: the proof is just the root, proving n and emptiness.
		proof = append(proof, t.Root())
	}
	return proof, nil
}

// VerifyRange recomputes the root from a claimed leaf run and its proof.
// n is the claimed total number of leaves, start the claimed index of the
// first supplied leaf. It returns the recomputed root; compare with a
// trusted root to accept.
func VerifyRange(n, start int, run []Hash, proof []Hash) (Hash, error) {
	if n < 0 || start < 0 || start+len(run) > n {
		return Hash{}, fmt.Errorf("%w: run [%d,%d) of %d leaves", ErrBadProof, start, start+len(run), n)
	}
	if n == 0 {
		if len(run) != 0 || len(proof) != 0 {
			return Hash{}, fmt.Errorf("%w: non-empty proof for empty tree", ErrBadProof)
		}
		return emptyRoot(), nil
	}
	end := start + len(run)
	if len(run) == 0 {
		// Empty run: proof must be exactly the root.
		if len(proof) != 1 {
			return Hash{}, fmt.Errorf("%w: empty run wants exactly the root", ErrBadProof)
		}
		return proof[0], nil
	}
	next := 0 // next proof hash to consume
	var build func(lo, hi int) (Hash, error)
	build = func(lo, hi int) (Hash, error) {
		if hi <= start || lo >= end {
			if next >= len(proof) {
				return Hash{}, fmt.Errorf("%w: proof exhausted", ErrBadProof)
			}
			h := proof[next]
			next++
			return h, nil
		}
		if lo >= start && hi <= end {
			return subtreeRoot(run[lo-start : hi-start]), nil
		}
		k := splitPoint(hi - lo)
		left, err := build(lo, lo+k)
		if err != nil {
			return Hash{}, err
		}
		right, err := build(lo+k, hi)
		if err != nil {
			return Hash{}, err
		}
		return nodeHash(left, right), nil
	}
	root, err := build(0, n)
	if err != nil {
		return Hash{}, err
	}
	if next != len(proof) {
		return Hash{}, fmt.Errorf("%w: %d unused proof hashes", ErrBadProof, len(proof)-next)
	}
	return root, nil
}

// --- Proof serialization (opaque blob carried in proto.RowsResponse) ---

// RangeProof bundles everything a client needs to verify a scan's
// completeness: tree shape, run position, fence leaves, and subtree hashes.
type RangeProof struct {
	// N is the total number of leaves in the provider's tree.
	N uint64
	// Start is the index of the first leaf in the supplied run (fences
	// included).
	Start uint64
	// LeftFence and RightFence are the boundary leaves adjacent to the
	// matched rows (absent at the tree edges). Key is the raw index key,
	// RowDigest the row content digest.
	LeftFence  *FenceLeaf
	RightFence *FenceLeaf
	// Hashes are the subtree hashes for everything outside the run.
	Hashes []Hash
}

// FenceLeaf is a boundary leaf disclosed for completeness checking.
type FenceLeaf struct {
	Key       []byte
	RowDigest []byte
}

// Marshal serializes the proof.
func (p *RangeProof) Marshal() []byte {
	size := 8 + 8 + 2 + len(p.Hashes)*HashSize + 32
	if p.LeftFence != nil {
		size += 8 + len(p.LeftFence.Key) + len(p.LeftFence.RowDigest)
	}
	if p.RightFence != nil {
		size += 8 + len(p.RightFence.Key) + len(p.RightFence.RowDigest)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint64(buf, p.N)
	buf = binary.BigEndian.AppendUint64(buf, p.Start)
	buf = appendFence(buf, p.LeftFence)
	buf = appendFence(buf, p.RightFence)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Hashes)))
	for _, h := range p.Hashes {
		buf = append(buf, h[:]...)
	}
	return buf
}

func appendFence(buf []byte, f *FenceLeaf) []byte {
	if f == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Key)))
	buf = append(buf, f.Key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.RowDigest)))
	return append(buf, f.RowDigest...)
}

// UnmarshalRangeProof parses a proof blob.
func UnmarshalRangeProof(buf []byte) (*RangeProof, error) {
	p := &RangeProof{}
	if len(buf) < 16 {
		return nil, ErrBadProof
	}
	p.N = binary.BigEndian.Uint64(buf[0:8])
	p.Start = binary.BigEndian.Uint64(buf[8:16])
	rest := buf[16:]
	var err error
	p.LeftFence, rest, err = readFence(rest)
	if err != nil {
		return nil, err
	}
	p.RightFence, rest, err = readFence(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, ErrBadProof
	}
	count := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(len(rest)) != uint64(count)*HashSize {
		return nil, ErrBadProof
	}
	p.Hashes = make([]Hash, count)
	for i := range p.Hashes {
		copy(p.Hashes[i][:], rest[i*HashSize:])
	}
	return p, nil
}

func readFence(buf []byte) (*FenceLeaf, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, ErrBadProof
	}
	present := buf[0]
	buf = buf[1:]
	if present == 0 {
		return nil, buf, nil
	}
	if len(buf) < 4 {
		return nil, nil, ErrBadProof
	}
	kl := binary.BigEndian.Uint32(buf)
	buf = buf[4:]
	if uint64(len(buf)) < uint64(kl)+4 {
		return nil, nil, ErrBadProof
	}
	key := append([]byte(nil), buf[:kl]...)
	buf = buf[kl:]
	dl := binary.BigEndian.Uint32(buf)
	buf = buf[4:]
	if uint64(len(buf)) < uint64(dl) {
		return nil, nil, ErrBadProof
	}
	digest := append([]byte(nil), buf[:dl]...)
	buf = buf[dl:]
	return &FenceLeaf{Key: key, RowDigest: digest}, buf, nil
}
