package merkle

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	mrand "math/rand"
	"reflect"
	"testing"
)

func makeLeaves(n int) []Hash {
	leaves := make([]Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("digest-%d", i)))
	}
	return leaves
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree has leaves")
	}
	if tr.Root() != sha256.Sum256(nil) {
		t.Fatal("empty root mismatch")
	}
	root, err := VerifyRange(0, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if root != tr.Root() {
		t.Fatal("verify of empty tree mismatch")
	}
	if _, err := VerifyRange(0, 0, nil, []Hash{{}}); err == nil {
		t.Fatal("non-empty proof for empty tree accepted")
	}
}

func TestSingleLeaf(t *testing.T) {
	leaves := makeLeaves(1)
	tr := New(leaves)
	if tr.Root() != leaves[0] {
		t.Fatal("single-leaf root should be the leaf hash")
	}
	proof, err := tr.ProveRange(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) != 0 {
		t.Fatalf("single full-range proof has %d hashes", len(proof))
	}
	root, err := VerifyRange(1, 0, leaves, proof)
	if err != nil || root != tr.Root() {
		t.Fatalf("verify: %v", err)
	}
}

func TestLeafHashDomainSeparation(t *testing.T) {
	// key/digest boundary must be unambiguous.
	a := LeafHash([]byte("ab"), []byte("c"))
	b := LeafHash([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("leaf hash ambiguous across key/digest boundary")
	}
	if LeafHash([]byte("x"), []byte("y")) == LeafHash([]byte("x"), []byte("z")) {
		t.Fatal("digest not included")
	}
}

func TestRootChangesWithAnyLeaf(t *testing.T) {
	leaves := makeLeaves(10)
	base := New(leaves).Root()
	for i := range leaves {
		mutated := append([]Hash(nil), leaves...)
		mutated[i][0] ^= 1
		if New(mutated).Root() == base {
			t.Fatalf("mutating leaf %d did not change root", i)
		}
	}
	// Order matters.
	swapped := append([]Hash(nil), leaves...)
	swapped[2], swapped[3] = swapped[3], swapped[2]
	if New(swapped).Root() == base {
		t.Fatal("leaf order does not affect root")
	}
}

func TestProveVerifyAllRanges(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33} {
		leaves := makeLeaves(n)
		tr := New(leaves)
		root := tr.Root()
		for start := 0; start <= n; start++ {
			for end := start; end <= n; end++ {
				proof, err := tr.ProveRange(start, end)
				if err != nil {
					t.Fatalf("n=%d [%d,%d): %v", n, start, end, err)
				}
				got, err := VerifyRange(n, start, leaves[start:end], proof)
				if err != nil {
					t.Fatalf("n=%d [%d,%d): verify: %v", n, start, end, err)
				}
				if got != root {
					t.Fatalf("n=%d [%d,%d): root mismatch", n, start, end)
				}
			}
		}
	}
}

func TestVerifyRejectsTamperedRun(t *testing.T) {
	leaves := makeLeaves(20)
	tr := New(leaves)
	root := tr.Root()
	proof, err := tr.ProveRange(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	run := append([]Hash(nil), leaves[5:12]...)

	// Drop a leaf from the middle of the run (provider withholding a row):
	// the recomputed root must differ.
	dropped := append(append([]Hash(nil), run[:3]...), run[4:]...)
	if got, err := VerifyRange(20, 5, dropped, proof); err == nil && got == root {
		t.Fatal("dropped leaf verified")
	}
	// Mutate a leaf (corrupted row).
	mutated := append([]Hash(nil), run...)
	mutated[2][0] ^= 1
	if got, err := VerifyRange(20, 5, mutated, proof); err == nil && got == root {
		t.Fatal("mutated leaf verified")
	}
	// Shift the claimed start (reordering attack).
	if got, err := VerifyRange(20, 6, run, proof); err == nil && got == root {
		t.Fatal("shifted start verified")
	}
	// A lie about the total count is NOT always detectable from the proof
	// alone (the extra phantom leaves can hide inside an opaque subtree
	// hash), which is why the client authenticates (root, n) as a pair from
	// the trusted digest. Document the contract: the same proof may verify
	// under n=21, but the client's trusted count pins n=20.
	trustedN := 20
	if claimedN := 21; claimedN == trustedN {
		t.Fatal("test setup broken")
	}
}

func TestVerifyRejectsBadProofShape(t *testing.T) {
	leaves := makeLeaves(8)
	tr := New(leaves)
	proof, err := tr.ProveRange(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyRange(8, 2, leaves[2:5], proof[:len(proof)-1]); err == nil {
		t.Fatal("short proof accepted")
	}
	if _, err := VerifyRange(8, 2, leaves[2:5], append(append([]Hash(nil), proof...), Hash{})); err == nil {
		t.Fatal("long proof accepted")
	}
	if _, err := VerifyRange(8, 7, leaves[2:5], proof); err == nil {
		t.Fatal("out-of-bounds run accepted")
	}
	if _, err := VerifyRange(-1, 0, nil, nil); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestEmptyRunProof(t *testing.T) {
	leaves := makeLeaves(9)
	tr := New(leaves)
	proof, err := tr.ProveRange(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) != 1 || proof[0] != tr.Root() {
		t.Fatalf("empty-run proof should be the root, got %d hashes", len(proof))
	}
	got, err := VerifyRange(9, 4, nil, proof)
	if err != nil || got != tr.Root() {
		t.Fatalf("verify empty run: %v", err)
	}
}

func TestProveRangeBounds(t *testing.T) {
	tr := New(makeLeaves(5))
	if _, err := tr.ProveRange(-1, 2); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := tr.ProveRange(3, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := tr.ProveRange(0, 6); err == nil {
		t.Fatal("overlong range accepted")
	}
}

func TestRandomizedRanges(t *testing.T) {
	rng := mrand.New(mrand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		leaves := makeLeaves(n)
		tr := New(leaves)
		root := tr.Root()
		start := rng.Intn(n + 1)
		end := start + rng.Intn(n-start+1)
		proof, err := tr.ProveRange(start, end)
		if err != nil {
			t.Fatal(err)
		}
		got, err := VerifyRange(n, start, leaves[start:end], proof)
		if err != nil || got != root {
			t.Fatalf("trial %d n=%d [%d,%d): %v", trial, n, start, end, err)
		}
	}
}

// Proof size must stay logarithmic in the tree size for fixed-width runs —
// the property that makes verified scans affordable.
func TestProofSizeLogarithmic(t *testing.T) {
	var prevLen int
	for _, n := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14} {
		leaves := makeLeaves(n)
		tr := New(leaves)
		start := n / 2
		proof, err := tr.ProveRange(start, start+16)
		if err != nil {
			t.Fatal(err)
		}
		// A contiguous 16-leaf run needs at most ~2*log2(n) subtree hashes.
		maxHashes := 0
		for s := n; s > 1; s /= 2 {
			maxHashes += 2
		}
		if len(proof) > maxHashes {
			t.Fatalf("n=%d: proof has %d hashes, want <= %d", n, len(proof), maxHashes)
		}
		if prevLen > 0 && len(proof) > prevLen+4 {
			t.Fatalf("proof size jumped from %d to %d between sizes", prevLen, len(proof))
		}
		prevLen = len(proof)
	}
}

// VerifyRange must never panic on adversarial inputs — random claimed
// shapes, runs, and proofs.
func TestVerifyRangeGarbageNeverPanics(t *testing.T) {
	rng := mrand.New(mrand.NewSource(21))
	randHashes := func(n int) []Hash {
		out := make([]Hash, n)
		for i := range out {
			rng.Read(out[i][:])
		}
		return out
	}
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(64) - 2 // occasionally negative
		start := rng.Intn(64) - 2
		run := randHashes(rng.Intn(20))
		proof := randHashes(rng.Intn(20))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("VerifyRange(n=%d start=%d |run|=%d |proof|=%d) panicked: %v",
						n, start, len(run), len(proof), r)
				}
			}()
			_, _ = VerifyRange(n, start, run, proof)
		}()
	}
}

func TestRangeProofMarshalRoundTrip(t *testing.T) {
	p := &RangeProof{
		N:     100,
		Start: 7,
		LeftFence: &FenceLeaf{
			Key:       []byte{1, 2, 3},
			RowDigest: bytes.Repeat([]byte{9}, 32),
		},
		RightFence: nil,
		Hashes:     []Hash{LeafHash([]byte("a"), []byte("b")), LeafHash([]byte("c"), []byte("d"))},
	}
	blob := p.Marshal()
	got, err := UnmarshalRangeProof(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n%#v\n%#v", p, got)
	}
	// No fences, no hashes.
	p2 := &RangeProof{N: 5, Start: 0, Hashes: []Hash{}}
	got2, err := UnmarshalRangeProof(p2.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got2.N != 5 || got2.Start != 0 || got2.LeftFence != nil || got2.RightFence != nil || len(got2.Hashes) != 0 {
		t.Fatalf("got %#v", got2)
	}
}

func TestUnmarshalRangeProofTruncations(t *testing.T) {
	p := &RangeProof{
		N: 10, Start: 1,
		LeftFence:  &FenceLeaf{Key: []byte("k"), RowDigest: []byte("d")},
		RightFence: &FenceLeaf{Key: []byte("k2"), RowDigest: []byte("d2")},
		Hashes:     []Hash{{1}, {2}},
	}
	blob := p.Marshal()
	for cut := 0; cut < len(blob); cut++ {
		if _, err := UnmarshalRangeProof(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func BenchmarkRoot10k(b *testing.B) {
	leaves := makeLeaves(10_000)
	tr := New(leaves)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Root()
	}
}

func BenchmarkProveRange10k(b *testing.B) {
	leaves := makeLeaves(10_000)
	tr := New(leaves)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.ProveRange(4000, 4100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyRange10k(b *testing.B) {
	leaves := makeLeaves(10_000)
	tr := New(leaves)
	proof, err := tr.ProveRange(4000, 4100)
	if err != nil {
		b.Fatal(err)
	}
	run := leaves[4000:4100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VerifyRange(10_000, 4000, run, proof); err != nil {
			b.Fatal(err)
		}
	}
}
