// Package encbase reimplements the encryption-based outsourcing designs the
// paper positions itself against (Sec. II-A): NetDB2/Hacigümüş-style row
// encryption with a coarse bucketization index, a deterministic-tag variant
// for exact matches, and an order-preserving-encryption variant. It is the
// baseline for experiments E2 (compute cost of encryption vs sharing), E6
// (exact match) and E7 (range queries and the privacy–performance
// trade-off: coarser buckets leak less and ship more false positives).
//
// The model is single-server: one provider stores ciphertext rows plus
// per-column index tags. The client keeps the keys, rewrites queries into
// tag predicates, decrypts and post-filters the superset the server
// returns — exactly the workflow the paper describes for encrypted
// databases.
package encbase

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// IndexKind selects the index the server can filter on.
type IndexKind int

const (
	// IndexBucket partitions each column domain into B equal buckets; the
	// server filters by bucket id (false positives at bucket edges).
	IndexBucket IndexKind = iota + 1
	// IndexDeterministic tags each value with a keyed deterministic MAC;
	// exact matches are precise, ranges are impossible server-side.
	IndexDeterministic
	// IndexOPE tags each value with an order-preserving encoding; ranges
	// are precise but the server learns value order (the security loss
	// Kantarcioglu & Clifton flag for order preservation).
	IndexOPE
)

func (k IndexKind) String() string {
	switch k {
	case IndexBucket:
		return "bucket"
	case IndexDeterministic:
		return "deterministic"
	case IndexOPE:
		return "ope"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// Errors.
var (
	ErrBadParams   = errors.New("encbase: invalid parameters")
	ErrNoSuchTable = errors.New("encbase: no such table")
	ErrNoRange     = errors.New("encbase: index kind cannot serve range queries")
)

// Schema describes a table of fixed-width numeric columns.
type Schema struct {
	Name string
	// Cols names each column; every value is a uint64 below DomainMax.
	Cols []string
	// DomainMax bounds column values (exclusive).
	DomainMax uint64
}

// StoredRow is what the server keeps: the encrypted tuple and one index tag
// per column.
type StoredRow struct {
	ID     uint64
	Cipher []byte
	Tags   []uint64
}

// WireSize is the number of bytes shipping this row costs.
func (r *StoredRow) WireSize() int {
	return 8 + len(r.Cipher) + 8*len(r.Tags)
}

// Server is the single encrypted-database provider.
type Server struct {
	tables map[string]*serverTable
}

type serverTable struct {
	schema Schema
	rows   []StoredRow
}

// NewServer returns an empty provider.
func NewServer() *Server {
	return &Server{tables: make(map[string]*serverTable)}
}

// CreateTable registers a table.
func (s *Server) CreateTable(schema Schema) error {
	if schema.Name == "" || len(schema.Cols) == 0 || schema.DomainMax == 0 {
		return fmt.Errorf("%w: %+v", ErrBadParams, schema)
	}
	if _, ok := s.tables[schema.Name]; ok {
		return fmt.Errorf("%w: duplicate table %q", ErrBadParams, schema.Name)
	}
	s.tables[schema.Name] = &serverTable{schema: schema}
	return nil
}

// Insert stores ciphertext rows.
func (s *Server) Insert(table string, rows []StoredRow) error {
	t, ok := s.tables[table]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	t.rows = append(t.rows, rows...)
	return nil
}

// SelectTags returns rows whose tag for column col lies in [lo, hi],
// along with the bytes that would cross the wire.
func (s *Server) SelectTags(table string, col int, lo, hi uint64) ([]StoredRow, int, error) {
	t, ok := s.tables[table]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if col < 0 || col >= len(t.schema.Cols) {
		return nil, 0, fmt.Errorf("%w: column %d", ErrBadParams, col)
	}
	var out []StoredRow
	bytes := 0
	for i := range t.rows {
		tag := t.rows[i].Tags[col]
		if tag >= lo && tag <= hi {
			out = append(out, t.rows[i])
			bytes += t.rows[i].WireSize()
		}
	}
	return out, bytes, nil
}

// SelectAll ships the whole table (the no-index fallback).
func (s *Server) SelectAll(table string) ([]StoredRow, int, error) {
	t, ok := s.tables[table]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	bytes := 0
	for i := range t.rows {
		bytes += t.rows[i].WireSize()
	}
	return t.rows, bytes, nil
}

// RowCount returns the number of stored rows.
func (s *Server) RowCount(table string) int {
	t, ok := s.tables[table]
	if !ok {
		return 0
	}
	return len(t.rows)
}

// Client holds the keys and rewrites queries.
type Client struct {
	kind    IndexKind
	buckets uint64
	aead    cipher.AEAD
	macKey  []byte
	rnd     io.Reader
	schemas map[string]Schema
	// opeSlot is the per-value randomness width of the OPE mapping.
	opeSlot uint
}

// NewClient builds a client. buckets is the bucketization fan-out
// (IndexBucket only; must divide the domain meaningfully).
func NewClient(kind IndexKind, masterKey []byte, buckets uint64) (*Client, error) {
	if kind < IndexBucket || kind > IndexOPE {
		return nil, fmt.Errorf("%w: kind %d", ErrBadParams, kind)
	}
	if kind == IndexBucket && buckets == 0 {
		return nil, fmt.Errorf("%w: zero buckets", ErrBadParams)
	}
	if len(masterKey) == 0 {
		return nil, fmt.Errorf("%w: empty key", ErrBadParams)
	}
	mac := hmac.New(sha256.New, masterKey)
	mac.Write([]byte("encbase/aes"))
	encKey := mac.Sum(nil)
	block, err := aes.NewCipher(encKey[:32])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	mac = hmac.New(sha256.New, masterKey)
	mac.Write([]byte("encbase/mac"))
	return &Client{
		kind:    kind,
		buckets: buckets,
		aead:    aead,
		macKey:  mac.Sum(nil),
		rnd:     rand.Reader,
		schemas: make(map[string]Schema),
		opeSlot: 16,
	}, nil
}

// CreateTable registers the schema on both sides.
func (c *Client) CreateTable(s *Server, schema Schema) error {
	if err := s.CreateTable(schema); err != nil {
		return err
	}
	c.schemas[schema.Name] = schema
	return nil
}

// tag computes the server-visible index tag of a value.
func (c *Client) tag(schema Schema, col int, v uint64) uint64 {
	switch c.kind {
	case IndexBucket:
		width := (schema.DomainMax + c.buckets - 1) / c.buckets
		return v / width
	case IndexDeterministic:
		mac := hmac.New(sha256.New, c.macKey)
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[:8], uint64(col))
		binary.BigEndian.PutUint64(buf[8:], v)
		mac.Write([]byte(schema.Name))
		mac.Write(buf[:])
		return binary.BigEndian.Uint64(mac.Sum(nil)[:8])
	case IndexOPE:
		// Strictly monotone keyed mapping: v*2^slot + PRF(v) mod 2^slot.
		mac := hmac.New(sha256.New, c.macKey)
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[:8], uint64(col))
		binary.BigEndian.PutUint64(buf[8:], v)
		mac.Write([]byte("ope"))
		mac.Write(buf[:])
		off := binary.BigEndian.Uint64(mac.Sum(nil)[:8]) & (uint64(1)<<c.opeSlot - 1)
		return v<<c.opeSlot | off
	default:
		return 0
	}
}

// tagRange rewrites a value interval into a tag interval.
func (c *Client) tagRange(schema Schema, col int, lo, hi uint64) (uint64, uint64, error) {
	switch c.kind {
	case IndexBucket:
		return c.tag(schema, col, lo), c.tag(schema, col, hi), nil
	case IndexOPE:
		// All tags of lo .. all tags of hi: [lo<<s, (hi<<s)|max].
		return lo << c.opeSlot, hi<<c.opeSlot | (uint64(1)<<c.opeSlot - 1), nil
	default:
		return 0, 0, ErrNoRange
	}
}

// encodeRow serializes plaintext values for encryption.
func encodeRow(vals []uint64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[i*8:], v)
	}
	return buf
}

func decodeRow(buf []byte) ([]uint64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("%w: ragged row", ErrBadParams)
	}
	vals := make([]uint64, len(buf)/8)
	for i := range vals {
		vals[i] = binary.BigEndian.Uint64(buf[i*8:])
	}
	return vals, nil
}

// EncryptRow seals one tuple and derives its index tags.
func (c *Client) EncryptRow(table string, id uint64, vals []uint64) (StoredRow, error) {
	schema, ok := c.schemas[table]
	if !ok {
		return StoredRow{}, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if len(vals) != len(schema.Cols) {
		return StoredRow{}, fmt.Errorf("%w: %d values for %d columns", ErrBadParams, len(vals), len(schema.Cols))
	}
	nonce := make([]byte, c.aead.NonceSize())
	if _, err := io.ReadFull(c.rnd, nonce); err != nil {
		return StoredRow{}, err
	}
	cipherText := append(nonce, c.aead.Seal(nil, nonce, encodeRow(vals), nil)...)
	row := StoredRow{ID: id, Cipher: cipherText, Tags: make([]uint64, len(vals))}
	for i, v := range vals {
		if v >= schema.DomainMax {
			return StoredRow{}, fmt.Errorf("%w: value %d outside domain", ErrBadParams, v)
		}
		row.Tags[i] = c.tag(schema, i, v)
	}
	return row, nil
}

// DecryptRow opens a stored tuple.
func (c *Client) DecryptRow(row StoredRow) ([]uint64, error) {
	ns := c.aead.NonceSize()
	if len(row.Cipher) < ns {
		return nil, fmt.Errorf("%w: short ciphertext", ErrBadParams)
	}
	plain, err := c.aead.Open(nil, row.Cipher[:ns], row.Cipher[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("encbase: decrypting row %d: %w", row.ID, err)
	}
	return decodeRow(plain)
}

// Insert encrypts and ships rows, returning the bytes sent.
func (c *Client) Insert(s *Server, table string, ids []uint64, rows [][]uint64) (int, error) {
	stored := make([]StoredRow, len(rows))
	bytes := 0
	for i, vals := range rows {
		row, err := c.EncryptRow(table, ids[i], vals)
		if err != nil {
			return 0, err
		}
		stored[i] = row
		bytes += row.WireSize()
	}
	if err := s.Insert(table, stored); err != nil {
		return 0, err
	}
	return bytes, nil
}

// QueryStats reports the cost and precision of one query.
type QueryStats struct {
	// RowsReturned is the superset size the server shipped.
	RowsReturned int
	// RowsMatched is the true result size after client post-filtering.
	RowsMatched int
	// BytesOnWire counts response payload bytes.
	BytesOnWire int
}

// FalsePositiveRate is the fraction of shipped rows the client discarded.
func (q QueryStats) FalsePositiveRate() float64 {
	if q.RowsReturned == 0 {
		return 0
	}
	return float64(q.RowsReturned-q.RowsMatched) / float64(q.RowsReturned)
}

// SelectRange runs a range query col ∈ [lo, hi]: rewrite to tags, fetch the
// superset, decrypt, post-filter.
func (c *Client) SelectRange(s *Server, table string, col int, lo, hi uint64) ([][]uint64, QueryStats, error) {
	schema, ok := c.schemas[table]
	if !ok {
		return nil, QueryStats{}, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	var stored []StoredRow
	var bytes int
	var err error
	if c.kind == IndexDeterministic {
		// Deterministic tags cannot express ranges; the paper's fallback is
		// shipping the whole table.
		stored, bytes, err = s.SelectAll(table)
	} else {
		tagLo, tagHi, terr := c.tagRange(schema, col, lo, hi)
		if terr != nil {
			return nil, QueryStats{}, terr
		}
		stored, bytes, err = s.SelectTags(table, col, tagLo, tagHi)
	}
	if err != nil {
		return nil, QueryStats{}, err
	}
	stats := QueryStats{RowsReturned: len(stored), BytesOnWire: bytes}
	var out [][]uint64
	for _, row := range stored {
		vals, err := c.DecryptRow(row)
		if err != nil {
			return nil, QueryStats{}, err
		}
		if vals[col] >= lo && vals[col] <= hi {
			out = append(out, vals)
		}
	}
	stats.RowsMatched = len(out)
	sort.Slice(out, func(i, j int) bool { return out[i][col] < out[j][col] })
	return out, stats, nil
}

// SelectEq runs an exact-match query col = v.
func (c *Client) SelectEq(s *Server, table string, col int, v uint64) ([][]uint64, QueryStats, error) {
	schema, ok := c.schemas[table]
	if !ok {
		return nil, QueryStats{}, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	tag := c.tag(schema, col, v)
	stored, bytes, err := s.SelectTags(table, col, tag, tag)
	if err != nil {
		return nil, QueryStats{}, err
	}
	stats := QueryStats{RowsReturned: len(stored), BytesOnWire: bytes}
	var out [][]uint64
	for _, row := range stored {
		vals, err := c.DecryptRow(row)
		if err != nil {
			return nil, QueryStats{}, err
		}
		if vals[col] == v {
			out = append(out, vals)
		}
	}
	stats.RowsMatched = len(out)
	return out, stats, nil
}
