package encbase

import (
	"errors"
	mrand "math/rand"
	"testing"
)

func setup(t testing.TB, kind IndexKind, buckets uint64, n int) (*Client, *Server) {
	t.Helper()
	srv := NewServer()
	cl, err := NewClient(kind, []byte("test key"), buckets)
	if err != nil {
		t.Fatal(err)
	}
	schema := Schema{Name: "t", Cols: []string{"a", "b"}, DomainMax: 1 << 20}
	if err := cl.CreateTable(srv, schema); err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, n)
	rows := make([][]uint64, n)
	rng := mrand.New(mrand.NewSource(5))
	for i := range rows {
		ids[i] = uint64(i + 1)
		rows[i] = []uint64{uint64(rng.Intn(1 << 20)), uint64(i)}
	}
	if _, err := cl.Insert(srv, "t", ids, rows); err != nil {
		t.Fatal(err)
	}
	return cl, srv
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(IndexBucket, []byte("k"), 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero buckets: %v", err)
	}
	if _, err := NewClient(IndexBucket, nil, 10); !errors.Is(err, ErrBadParams) {
		t.Errorf("empty key: %v", err)
	}
	if _, err := NewClient(99, []byte("k"), 10); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad kind: %v", err)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	cl, _ := setup(t, IndexBucket, 64, 0)
	row, err := cl.EncryptRow("t", 7, []uint64{123, 456})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := cl.DecryptRow(row)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 123 || vals[1] != 456 {
		t.Fatalf("got %v", vals)
	}
	// Tampering is detected (AES-GCM).
	row.Cipher[len(row.Cipher)-1] ^= 1
	if _, err := cl.DecryptRow(row); err == nil {
		t.Fatal("tampered ciphertext decrypted")
	}
}

func TestEncryptRejectsBadInput(t *testing.T) {
	cl, _ := setup(t, IndexBucket, 64, 0)
	if _, err := cl.EncryptRow("missing", 1, []uint64{1, 2}); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table: %v", err)
	}
	if _, err := cl.EncryptRow("t", 1, []uint64{1}); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad arity: %v", err)
	}
	if _, err := cl.EncryptRow("t", 1, []uint64{1 << 20, 2}); !errors.Is(err, ErrBadParams) {
		t.Errorf("domain overflow: %v", err)
	}
}

func TestBucketRangeQueryIsSupersetThenExact(t *testing.T) {
	cl, srv := setup(t, IndexBucket, 64, 5000)
	rows, stats, err := cl.SelectRange(srv, "t", 0, 1000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	// Post-filtered rows are exactly the true matches.
	for _, r := range rows {
		if r[0] < 1000 || r[0] > 50_000 {
			t.Fatalf("false positive after filtering: %v", r)
		}
	}
	if stats.RowsMatched != len(rows) {
		t.Fatalf("stats mismatch: %+v vs %d", stats, len(rows))
	}
	// The superset is at least the match set, usually strictly larger.
	if stats.RowsReturned < stats.RowsMatched {
		t.Fatalf("returned %d < matched %d", stats.RowsReturned, stats.RowsMatched)
	}
	if stats.BytesOnWire == 0 {
		t.Fatal("no bytes accounted")
	}
}

func TestBucketPrivacyPerformanceTradeoff(t *testing.T) {
	// Fewer buckets (more privacy) must ship at least as many rows.
	coarseCl, coarseSrv := setup(t, IndexBucket, 4, 3000)
	fineCl, fineSrv := setup(t, IndexBucket, 1024, 3000)
	_, coarse, err := coarseCl.SelectRange(coarseSrv, "t", 0, 100_000, 110_000)
	if err != nil {
		t.Fatal(err)
	}
	_, fine, err := fineCl.SelectRange(fineSrv, "t", 0, 100_000, 110_000)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.RowsMatched != fine.RowsMatched {
		t.Fatalf("true matches differ: %d vs %d", coarse.RowsMatched, fine.RowsMatched)
	}
	if coarse.RowsReturned < fine.RowsReturned {
		t.Fatalf("coarse buckets returned fewer rows (%d) than fine (%d)",
			coarse.RowsReturned, fine.RowsReturned)
	}
	if coarse.FalsePositiveRate() < fine.FalsePositiveRate() {
		t.Fatalf("coarse FP rate %f < fine %f", coarse.FalsePositiveRate(), fine.FalsePositiveRate())
	}
}

func TestDeterministicExactMatch(t *testing.T) {
	cl, srv := setup(t, IndexDeterministic, 0, 500)
	rows, stats, err := cl.SelectEq(srv, "t", 1, 42) // column b holds i
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != 42 {
		t.Fatalf("got %v", rows)
	}
	// Deterministic tags are precise: no false positives (collisions aside).
	if stats.FalsePositiveRate() != 0 {
		t.Fatalf("fp rate %f", stats.FalsePositiveRate())
	}
	// Ranges degrade to shipping the whole table.
	_, stats, err = cl.SelectRange(srv, "t", 1, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsReturned != 500 {
		t.Fatalf("deterministic range returned %d rows, want all 500", stats.RowsReturned)
	}
	if stats.RowsMatched != 11 {
		t.Fatalf("matched %d", stats.RowsMatched)
	}
}

func TestOPERangeIsExact(t *testing.T) {
	cl, srv := setup(t, IndexOPE, 0, 2000)
	rows, stats, err := cl.SelectRange(srv, "t", 1, 100, 199) // b = i
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows", len(rows))
	}
	if stats.FalsePositiveRate() != 0 {
		t.Fatalf("OPE should be exact, fp rate %f", stats.FalsePositiveRate())
	}
}

func TestOPETagsPreserveOrder(t *testing.T) {
	cl, _ := setup(t, IndexOPE, 0, 0)
	schema := cl.schemas["t"]
	prev := uint64(0)
	for v := uint64(1); v < 2000; v += 7 {
		tag := cl.tag(schema, 0, v)
		if tag <= prev {
			t.Fatalf("order violated at %d", v)
		}
		prev = tag
	}
}

func TestSelectEqBucketPostFilters(t *testing.T) {
	cl, srv := setup(t, IndexBucket, 16, 2000)
	rows, stats, err := cl.SelectEq(srv, "t", 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != 77 {
		t.Fatalf("got %v", rows)
	}
	// With 16 buckets over 2^20 and 2000 rows in col b (values 0..1999),
	// the bucket of 77 contains many rows: a real superset.
	if stats.RowsReturned <= stats.RowsMatched {
		t.Fatalf("expected superset, got %+v", stats)
	}
}

func TestServerErrors(t *testing.T) {
	srv := NewServer()
	if err := srv.CreateTable(Schema{}); !errors.Is(err, ErrBadParams) {
		t.Errorf("empty schema: %v", err)
	}
	if err := srv.Insert("x", nil); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table insert: %v", err)
	}
	if _, _, err := srv.SelectTags("x", 0, 0, 1); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table select: %v", err)
	}
	if _, _, err := srv.SelectAll("x"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table select all: %v", err)
	}
	if err := srv.CreateTable(Schema{Name: "t", Cols: []string{"a"}, DomainMax: 10}); err != nil {
		t.Fatal(err)
	}
	if err := srv.CreateTable(Schema{Name: "t", Cols: []string{"a"}, DomainMax: 10}); !errors.Is(err, ErrBadParams) {
		t.Errorf("duplicate table: %v", err)
	}
	if _, _, err := srv.SelectTags("t", 5, 0, 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad column: %v", err)
	}
	if srv.RowCount("t") != 0 || srv.RowCount("x") != 0 {
		t.Error("row counts")
	}
}

func BenchmarkEncryptRow(b *testing.B) {
	cl, _ := setup(b, IndexBucket, 64, 0)
	vals := []uint64{12345, 67890}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cl.EncryptRow("t", uint64(i), vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectRangeBucketed(b *testing.B) {
	cl, srv := setup(b, IndexBucket, 64, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.SelectRange(srv, "t", 0, 1000, 50_000); err != nil {
			b.Fatal(err)
		}
	}
}
