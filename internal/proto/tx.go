package proto

// Transaction messages: client-coordinated two-phase commit. The data
// source is the only coordinator (the paper's trust model — providers never
// talk to each other), so the protocol is deliberately thin: prepare ships
// the transaction's buffered per-provider mutations for staging, commit
// applies the staged batch atomically under the store lock, abort discards
// it. Durability of the decision lives in the CLIENT's transaction log, not
// at providers: a provider that loses its staged ops between prepare and
// commit answers commit with CodeNoSuchTx and the client falls back to
// hinted-handoff replay of the raw ops.

// TxPrepareRequest stages a transaction's mutations at one provider. Ops
// are encoded Insert/Update/Delete request bodies (Encode output), applied
// in order at commit. Re-preparing an id replaces the staged ops
// (idempotent retransmit).
type TxPrepareRequest struct {
	TxID uint64
	Ops  [][]byte
}

func (*TxPrepareRequest) Kind() Kind { return KTxPrepare }
func (m *TxPrepareRequest) marshal(w *writer) {
	w.u64(m.TxID)
	writeByteSlices(w, m.Ops)
}
func (m *TxPrepareRequest) unmarshal(r *reader) {
	m.TxID = r.u64()
	m.Ops = readByteSlices(r)
}

// TxCommitRequest applies a staged transaction. Unknown ids answer
// CodeNoSuchTx so the client can distinguish "never staged / lost" from a
// hard rejection.
type TxCommitRequest struct {
	TxID uint64
}

func (*TxCommitRequest) Kind() Kind            { return KTxCommit }
func (m *TxCommitRequest) marshal(w *writer)   { w.u64(m.TxID) }
func (m *TxCommitRequest) unmarshal(r *reader) { m.TxID = r.u64() }

// TxAbortRequest discards a staged transaction; unknown ids succeed
// (presumed abort makes aborts safe to over-send).
type TxAbortRequest struct {
	TxID uint64
}

func (*TxAbortRequest) Kind() Kind            { return KTxAbort }
func (m *TxAbortRequest) marshal(w *writer)   { w.u64(m.TxID) }
func (m *TxAbortRequest) unmarshal(r *reader) { m.TxID = r.u64() }

// --- Client transaction-log records ---
//
// The client's tx log reuses the proto encoding (like the hint journals):
// each WAL record is one encoded message. TxOpsRecord captures one
// provider's share of the transaction before prepare is sent; TxMarkRecord
// captures state transitions. Recovery replays the log in order: a tx whose
// commit mark made it to the log is re-driven to completion, anything else
// is presumed aborted.

// Transaction states recorded in TxMarkRecord.
const (
	TxStateIntent uint8 = iota + 1
	TxStateCommitted
	TxStateAborted
	TxStateResolved
)

// TxOpsRecord is one provider's encoded op batch for a transaction.
type TxOpsRecord struct {
	TxID     uint64
	Provider uint32
	Ops      [][]byte
}

func (*TxOpsRecord) Kind() Kind { return KTxOps }
func (m *TxOpsRecord) marshal(w *writer) {
	w.u64(m.TxID)
	w.uvarint(uint64(m.Provider))
	writeByteSlices(w, m.Ops)
}
func (m *TxOpsRecord) unmarshal(r *reader) {
	m.TxID = r.u64()
	m.Provider = uint32(r.uvarint())
	m.Ops = readByteSlices(r)
}

// TxMarkRecord is a transaction state transition in the client's tx log.
type TxMarkRecord struct {
	TxID  uint64
	State uint8
}

func (*TxMarkRecord) Kind() Kind { return KTxMark }
func (m *TxMarkRecord) marshal(w *writer) {
	w.u64(m.TxID)
	w.u8(m.State)
}
func (m *TxMarkRecord) unmarshal(r *reader) {
	m.TxID = r.u64()
	m.State = r.u8()
}

func writeByteSlices(w *writer, bs [][]byte) {
	w.uvarint(uint64(len(bs)))
	for _, b := range bs {
		w.bytes(b)
	}
}

func readByteSlices(r *reader) [][]byte {
	n := r.length(1 << 20)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = r.bytes()
	}
	return out
}
