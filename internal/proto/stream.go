package proto

// Wire-size helpers used by the transport layer to split large row
// responses into bounded stream chunks without encoding twice.

// uvarintSize returns the encoded length of v as a uvarint.
func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// RowWireSize returns the exact number of bytes one Row occupies inside an
// encoded message (id + cell count + length-prefixed cells).
func RowWireSize(r Row) int {
	n := uvarintSize(r.ID) + uvarintSize(uint64(len(r.Cells)))
	for _, c := range r.Cells {
		n += uvarintSize(uint64(len(c))) + len(c)
	}
	return n
}

// MergeRowsChunk folds one streamed RowsResponse chunk into an accumulated
// response: rows append in arrival order, Columns come from the first
// chunk that carries any, and the completeness Proof rides whichever chunk
// carries it (the last, under the v2 streaming protocol). A nil dst starts
// from chunk.
func MergeRowsChunk(dst, chunk *RowsResponse) *RowsResponse {
	if dst == nil {
		return chunk
	}
	dst.Rows = append(dst.Rows, chunk.Rows...)
	if len(dst.Columns) == 0 && len(chunk.Columns) > 0 {
		dst.Columns = chunk.Columns
	}
	if len(chunk.Proof) > 0 {
		dst.Proof = chunk.Proof
	}
	return dst
}
