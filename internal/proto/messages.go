package proto

import (
	"fmt"
)

// Kind tags every message on the wire.
type Kind uint8

// Message kinds. Requests and responses share one space so a frame is
// self-describing.
const (
	KPing Kind = iota + 1
	KCreateTable
	KDropTable
	KListTables
	KInsert
	KDelete
	KUpdate
	KScan
	KAggregate
	KJoin
	KDigest
	KOK
	KError
	KRows
	KAggResult
	KJoinResult
	KDigestResult
	KTables
	KGroupResult
	KTableState
	KStats
	KTxPrepare
	KTxCommit
	KTxAbort
	KTxOps
	KTxMark
)

// Message is anything that can travel in a frame.
type Message interface {
	Kind() Kind
	marshal(w *writer)
	unmarshal(r *reader)
}

// --- Requests ---

// PingRequest checks liveness.
type PingRequest struct{}

func (*PingRequest) Kind() Kind          { return KPing }
func (*PingRequest) marshal(w *writer)   {}
func (*PingRequest) unmarshal(r *reader) {}

// CreateTableRequest creates a share-space table.
type CreateTableRequest struct {
	Spec TableSpec
}

func (*CreateTableRequest) Kind() Kind { return KCreateTable }
func (m *CreateTableRequest) marshal(w *writer) {
	writeSpec(w, &m.Spec)
}
func (m *CreateTableRequest) unmarshal(r *reader) {
	m.Spec = readSpec(r)
}

// DropTableRequest removes a table and its indexes.
type DropTableRequest struct {
	Table string
}

func (*DropTableRequest) Kind() Kind            { return KDropTable }
func (m *DropTableRequest) marshal(w *writer)   { w.str(m.Table) }
func (m *DropTableRequest) unmarshal(r *reader) { m.Table = r.str() }

// ListTablesRequest asks for all table specs.
type ListTablesRequest struct{}

func (*ListTablesRequest) Kind() Kind          { return KListTables }
func (*ListTablesRequest) marshal(w *writer)   {}
func (*ListTablesRequest) unmarshal(r *reader) {}

// InsertRequest appends rows. Row IDs are client-assigned and must be new.
type InsertRequest struct {
	Table string
	Rows  []Row
}

func (*InsertRequest) Kind() Kind { return KInsert }
func (m *InsertRequest) marshal(w *writer) {
	w.str(m.Table)
	writeRows(w, m.Rows)
}
func (m *InsertRequest) unmarshal(r *reader) {
	m.Table = r.str()
	m.Rows = readRows(r)
}

// DeleteRequest removes rows by id.
type DeleteRequest struct {
	Table  string
	RowIDs []uint64
}

func (*DeleteRequest) Kind() Kind { return KDelete }
func (m *DeleteRequest) marshal(w *writer) {
	w.str(m.Table)
	writeU64s(w, m.RowIDs)
}
func (m *DeleteRequest) unmarshal(r *reader) {
	m.Table = r.str()
	m.RowIDs = readU64s(r)
}

// UpdateRequest replaces whole rows by id (the paper's eager update:
// reconstruct at the client, re-share, redistribute).
type UpdateRequest struct {
	Table string
	Rows  []Row
}

func (*UpdateRequest) Kind() Kind { return KUpdate }
func (m *UpdateRequest) marshal(w *writer) {
	w.str(m.Table)
	writeRows(w, m.Rows)
}
func (m *UpdateRequest) unmarshal(r *reader) {
	m.Table = r.str()
	m.Rows = readRows(r)
}

// ScanRequest returns rows matching Filter (all rows when nil), projected
// to the named columns (all when empty), capped at Limit when non-zero.
// WithProof asks for a Merkle completeness proof over the filtered column.
// TimeoutMillis, when non-zero, is the client's remaining read deadline at
// send time: a provider streaming the response checks it between batches
// and abandons the scan with CodeDeadlineExceeded once it elapses, so a
// client that has already timed out stops costing the provider work.
type ScanRequest struct {
	Table         string
	Filter        *Filter
	Projection    []string
	Limit         uint64
	WithProof     bool
	TimeoutMillis uint64
}

func (*ScanRequest) Kind() Kind { return KScan }
func (m *ScanRequest) marshal(w *writer) {
	w.str(m.Table)
	writeFilter(w, m.Filter)
	writeStrings(w, m.Projection)
	w.uvarint(m.Limit)
	w.bool(m.WithProof)
	w.uvarint(m.TimeoutMillis)
}
func (m *ScanRequest) unmarshal(r *reader) {
	m.Table = r.str()
	m.Filter = readFilter(r)
	m.Projection = readStrings(r)
	m.Limit = r.uvarint()
	m.WithProof = r.bool()
	m.TimeoutMillis = r.uvarint()
}

// AggregateRequest computes a provider-side partial aggregate.
// OrderCol names the OPP column that defines ordering (min/max/median);
// ValueCol names the field-share column to return/sum (empty for count).
// A non-empty GroupCol partitions matching rows by that column's cell bytes
// (an OPP column: deterministic shares make grouping exact) and the
// provider answers with a GroupResult instead of an AggResult.
type AggregateRequest struct {
	Table    string
	Op       AggOp
	OrderCol string
	ValueCol string
	GroupCol string
	Filter   *Filter
}

func (*AggregateRequest) Kind() Kind { return KAggregate }
func (m *AggregateRequest) marshal(w *writer) {
	w.str(m.Table)
	w.u8(uint8(m.Op))
	w.str(m.OrderCol)
	w.str(m.ValueCol)
	w.str(m.GroupCol)
	writeFilter(w, m.Filter)
}
func (m *AggregateRequest) unmarshal(r *reader) {
	m.Table = r.str()
	m.Op = AggOp(r.u8())
	m.OrderCol = r.str()
	m.ValueCol = r.str()
	m.GroupCol = r.str()
	m.Filter = readFilter(r)
}

// JoinRequest equijoins two tables on share-equality of the named columns
// (same-domain referential joins, paper Sec. V-A). The provider returns the
// projected cells of both sides for each matching pair.
type JoinRequest struct {
	LeftTable  string
	LeftCol    string
	RightTable string
	RightCol   string
	LeftProj   []string
	RightProj  []string
	// Filter optionally restricts the left side before joining.
	Filter *Filter
}

func (*JoinRequest) Kind() Kind { return KJoin }
func (m *JoinRequest) marshal(w *writer) {
	w.str(m.LeftTable)
	w.str(m.LeftCol)
	w.str(m.RightTable)
	w.str(m.RightCol)
	writeStrings(w, m.LeftProj)
	writeStrings(w, m.RightProj)
	writeFilter(w, m.Filter)
}
func (m *JoinRequest) unmarshal(r *reader) {
	m.LeftTable = r.str()
	m.LeftCol = r.str()
	m.RightTable = r.str()
	m.RightCol = r.str()
	m.LeftProj = readStrings(r)
	m.RightProj = readStrings(r)
	m.Filter = readFilter(r)
}

// DigestRequest asks for the Merkle root of a table's indexed column.
type DigestRequest struct {
	Table string
	Col   string
}

func (*DigestRequest) Kind() Kind { return KDigest }
func (m *DigestRequest) marshal(w *writer) {
	w.str(m.Table)
	w.str(m.Col)
}
func (m *DigestRequest) unmarshal(r *reader) {
	m.Table = r.str()
	m.Col = r.str()
}

// TableStateRequest asks for a provider-neutral resync digest of a whole
// table: a Merkle root over the sorted row ids whose leaves commit to cell
// *shapes* (and to full plaintext-replicated cells) rather than to share
// bytes. Share cells differ per provider by construction, so this is the
// strongest table summary that can still be compared across providers; the
// repair loop uses it to check a recovered provider against a healthy peer.
// The response is a DigestResult.
type TableStateRequest struct {
	Table string
}

func (*TableStateRequest) Kind() Kind            { return KTableState }
func (m *TableStateRequest) marshal(w *writer)   { w.str(m.Table) }
func (m *TableStateRequest) unmarshal(r *reader) { m.Table = r.str() }

// --- Responses ---

// OKResponse acknowledges a mutation.
type OKResponse struct {
	// Affected is the number of rows touched.
	Affected uint64
}

func (*OKResponse) Kind() Kind            { return KOK }
func (m *OKResponse) marshal(w *writer)   { w.uvarint(m.Affected) }
func (m *OKResponse) unmarshal(r *reader) { m.Affected = r.uvarint() }

// StatsResponse answers a ping with the provider's storage and serving
// state: how much of the page cache is in use, how effective it is, how far
// the WAL has run ahead of the last checkpoint, how long fsyncs are taking,
// and — on TCP servers — what the admission scheduler sees (queue depth,
// admission waits, handler latency quantiles). The client's repair loop
// reads it on every probe, so provider memory pressure, durability lag, and
// serving pressure are visible without a separate stats round-trip.
type StatsResponse struct {
	Tables        uint64
	Rows          uint64
	Pages         uint64 // page-directory entries across all tables
	ResidentPages uint64 // pages currently decoded in the cache
	ResidentBytes uint64 // exact encoded bytes of resident pages
	CacheBudget   uint64 // 0 = unbounded
	CacheHits     uint64
	CacheMisses   uint64
	Evictions     uint64
	Writebacks    uint64
	WALRecords    uint64 // last appended LSN
	CheckpointLSN uint64 // LSN the durable manifest covers
	CheckpointLag uint64 // records a restart would replay right now
	Checkpoints   uint64

	// WAL fsync visibility: how many group-commit fsyncs ran, their total
	// and maximum wall time. Mean lag = WALFsyncNanos / WALFsyncs.
	WALFsyncs       uint64
	WALFsyncNanos   uint64
	WALFsyncMaxNano uint64

	// Serving-path stats, filled by the TCP transport's admission
	// scheduler (zero on in-process loopback connections): current queue
	// depth across tenant queues, tenants with queued work, cumulative
	// admitted/shed request counts, and latency quantiles in nanoseconds
	// for admission wait and handler execution.
	QueueDepth   uint64
	QueueTenants uint64
	Admitted     uint64
	Shed         uint64
	AdmitWaitP50 uint64
	AdmitWaitP99 uint64
	HandleP50    uint64
	HandleP99    uint64
	HandleP999   uint64
}

func (*StatsResponse) Kind() Kind { return KStats }
func (m *StatsResponse) marshal(w *writer) {
	w.uvarint(m.Tables)
	w.uvarint(m.Rows)
	w.uvarint(m.Pages)
	w.uvarint(m.ResidentPages)
	w.uvarint(m.ResidentBytes)
	w.uvarint(m.CacheBudget)
	w.uvarint(m.CacheHits)
	w.uvarint(m.CacheMisses)
	w.uvarint(m.Evictions)
	w.uvarint(m.Writebacks)
	w.uvarint(m.WALRecords)
	w.uvarint(m.CheckpointLSN)
	w.uvarint(m.CheckpointLag)
	w.uvarint(m.Checkpoints)
	w.uvarint(m.WALFsyncs)
	w.uvarint(m.WALFsyncNanos)
	w.uvarint(m.WALFsyncMaxNano)
	w.uvarint(m.QueueDepth)
	w.uvarint(m.QueueTenants)
	w.uvarint(m.Admitted)
	w.uvarint(m.Shed)
	w.uvarint(m.AdmitWaitP50)
	w.uvarint(m.AdmitWaitP99)
	w.uvarint(m.HandleP50)
	w.uvarint(m.HandleP99)
	w.uvarint(m.HandleP999)
}
func (m *StatsResponse) unmarshal(r *reader) {
	m.Tables = r.uvarint()
	m.Rows = r.uvarint()
	m.Pages = r.uvarint()
	m.ResidentPages = r.uvarint()
	m.ResidentBytes = r.uvarint()
	m.CacheBudget = r.uvarint()
	m.CacheHits = r.uvarint()
	m.CacheMisses = r.uvarint()
	m.Evictions = r.uvarint()
	m.Writebacks = r.uvarint()
	m.WALRecords = r.uvarint()
	m.CheckpointLSN = r.uvarint()
	m.CheckpointLag = r.uvarint()
	m.Checkpoints = r.uvarint()
	m.WALFsyncs = r.uvarint()
	m.WALFsyncNanos = r.uvarint()
	m.WALFsyncMaxNano = r.uvarint()
	m.QueueDepth = r.uvarint()
	m.QueueTenants = r.uvarint()
	m.Admitted = r.uvarint()
	m.Shed = r.uvarint()
	m.AdmitWaitP50 = r.uvarint()
	m.AdmitWaitP99 = r.uvarint()
	m.HandleP50 = r.uvarint()
	m.HandleP99 = r.uvarint()
	m.HandleP999 = r.uvarint()
}

// ErrorResponse reports a provider-side failure.
type ErrorResponse struct {
	Code ErrorCode
	Msg  string
}

func (*ErrorResponse) Kind() Kind { return KError }
func (m *ErrorResponse) marshal(w *writer) {
	w.u16(uint16(m.Code))
	w.str(m.Msg)
}
func (m *ErrorResponse) unmarshal(r *reader) {
	m.Code = ErrorCode(r.u16())
	m.Msg = r.str()
}

// Err converts the response into an error value.
func (m *ErrorResponse) Err() error {
	return &RemoteError{Code: m.Code, Msg: m.Msg}
}

// RowsResponse carries scan results. Columns lists the projected column
// names in cell order. Proof, when requested, is an opaque completeness
// proof produced by the trust layer.
type RowsResponse struct {
	Columns []string
	Rows    []Row
	Proof   []byte
}

func (*RowsResponse) Kind() Kind { return KRows }
func (m *RowsResponse) marshal(w *writer) {
	writeStrings(w, m.Columns)
	writeRows(w, m.Rows)
	w.bytes(m.Proof)
}
func (m *RowsResponse) unmarshal(r *reader) {
	m.Columns = readStrings(r)
	m.Rows = readRows(r)
	m.Proof = r.bytes()
	if len(m.Proof) == 0 {
		m.Proof = nil
	}
}

// AggResult carries a partial aggregate. Count is always set; Sum holds the
// field-share sum for AggSum; Row holds the selected row for min/max/median.
type AggResult struct {
	Count  uint64
	Sum    uint64
	HasRow bool
	Row    Row
}

func (*AggResult) Kind() Kind { return KAggResult }
func (m *AggResult) marshal(w *writer) {
	w.uvarint(m.Count)
	w.u64(m.Sum)
	w.bool(m.HasRow)
	if m.HasRow {
		writeRow(w, m.Row)
	}
}
func (m *AggResult) unmarshal(r *reader) {
	m.Count = r.uvarint()
	m.Sum = r.u64()
	m.HasRow = r.bool()
	if m.HasRow {
		m.Row = readRow(r)
	}
}

// GroupPartial is one group's partial aggregate at a provider: the group
// key's share bytes, the group's row count, and the field-share sum of the
// value column.
type GroupPartial struct {
	Key   []byte
	Count uint64
	Sum   uint64
}

// GroupResult carries grouped partial aggregates, ordered by key bytes —
// which is value order, so groups align positionally across providers.
type GroupResult struct {
	Groups []GroupPartial
}

func (*GroupResult) Kind() Kind { return KGroupResult }
func (m *GroupResult) marshal(w *writer) {
	w.uvarint(uint64(len(m.Groups)))
	for _, g := range m.Groups {
		w.bytes(g.Key)
		w.uvarint(g.Count)
		w.u64(g.Sum)
	}
}
func (m *GroupResult) unmarshal(r *reader) {
	n := r.length(maxListLen)
	if r.err != nil || n == 0 {
		return
	}
	m.Groups = make([]GroupPartial, n)
	for i := range m.Groups {
		m.Groups[i].Key = r.bytes()
		m.Groups[i].Count = r.uvarint()
		m.Groups[i].Sum = r.u64()
	}
}

// JoinedRow is one matched pair from a provider-side equijoin.
type JoinedRow struct {
	LeftID  uint64
	RightID uint64
	// Cells holds the left projection cells followed by the right ones.
	Cells [][]byte
}

// JoinResult carries equijoin output. Columns lists left projection names
// followed by right projection names.
type JoinResult struct {
	Columns []string
	Rows    []JoinedRow
}

func (*JoinResult) Kind() Kind { return KJoinResult }
func (m *JoinResult) marshal(w *writer) {
	writeStrings(w, m.Columns)
	w.uvarint(uint64(len(m.Rows)))
	for _, jr := range m.Rows {
		w.u64(jr.LeftID)
		w.u64(jr.RightID)
		w.uvarint(uint64(len(jr.Cells)))
		for _, c := range jr.Cells {
			w.bytes(c)
		}
	}
}
func (m *JoinResult) unmarshal(r *reader) {
	m.Columns = readStrings(r)
	n := r.length(maxListLen)
	if r.err != nil {
		return
	}
	m.Rows = make([]JoinedRow, n)
	for i := range m.Rows {
		m.Rows[i].LeftID = r.u64()
		m.Rows[i].RightID = r.u64()
		cn := r.length(4096)
		if r.err != nil {
			return
		}
		if cn == 0 {
			continue
		}
		m.Rows[i].Cells = make([][]byte, cn)
		for j := range m.Rows[i].Cells {
			m.Rows[i].Cells[j] = r.bytes()
		}
	}
}

// DigestResult carries a table column's Merkle root and row count.
type DigestResult struct {
	Root  []byte
	Count uint64
}

func (*DigestResult) Kind() Kind { return KDigestResult }
func (m *DigestResult) marshal(w *writer) {
	w.bytes(m.Root)
	w.uvarint(m.Count)
}
func (m *DigestResult) unmarshal(r *reader) {
	m.Root = r.bytes()
	m.Count = r.uvarint()
}

// TablesResponse lists all table specs at a provider.
type TablesResponse struct {
	Specs []TableSpec
}

func (*TablesResponse) Kind() Kind { return KTables }
func (m *TablesResponse) marshal(w *writer) {
	w.uvarint(uint64(len(m.Specs)))
	for i := range m.Specs {
		writeSpec(w, &m.Specs[i])
	}
}
func (m *TablesResponse) unmarshal(r *reader) {
	n := r.length(65536)
	if r.err != nil || n == 0 {
		return
	}
	m.Specs = make([]TableSpec, n)
	for i := range m.Specs {
		m.Specs[i] = readSpec(r)
	}
}

// newMessage allocates the empty message for a kind.
func newMessage(k Kind) (Message, error) {
	switch k {
	case KPing:
		return &PingRequest{}, nil
	case KCreateTable:
		return &CreateTableRequest{}, nil
	case KDropTable:
		return &DropTableRequest{}, nil
	case KListTables:
		return &ListTablesRequest{}, nil
	case KInsert:
		return &InsertRequest{}, nil
	case KDelete:
		return &DeleteRequest{}, nil
	case KUpdate:
		return &UpdateRequest{}, nil
	case KScan:
		return &ScanRequest{}, nil
	case KAggregate:
		return &AggregateRequest{}, nil
	case KJoin:
		return &JoinRequest{}, nil
	case KDigest:
		return &DigestRequest{}, nil
	case KOK:
		return &OKResponse{}, nil
	case KError:
		return &ErrorResponse{}, nil
	case KRows:
		return &RowsResponse{}, nil
	case KAggResult:
		return &AggResult{}, nil
	case KJoinResult:
		return &JoinResult{}, nil
	case KDigestResult:
		return &DigestResult{}, nil
	case KTables:
		return &TablesResponse{}, nil
	case KGroupResult:
		return &GroupResult{}, nil
	case KTableState:
		return &TableStateRequest{}, nil
	case KStats:
		return &StatsResponse{}, nil
	case KTxPrepare:
		return &TxPrepareRequest{}, nil
	case KTxCommit:
		return &TxCommitRequest{}, nil
	case KTxAbort:
		return &TxAbortRequest{}, nil
	case KTxOps:
		return &TxOpsRecord{}, nil
	case KTxMark:
		return &TxMarkRecord{}, nil
	default:
		return nil, fmt.Errorf("proto: unknown message kind %d", k)
	}
}

// Encode serializes a message body (kind byte + payload), without framing.
func Encode(m Message) []byte {
	w := &writer{buf: make([]byte, 0, 64)}
	w.u8(uint8(m.Kind()))
	m.marshal(w)
	return w.buf
}

// Decode parses a message body produced by Encode, verifying that the
// payload is fully consumed.
func Decode(buf []byte) (Message, error) {
	if len(buf) == 0 {
		return nil, ErrTruncated
	}
	m, err := newMessage(Kind(buf[0]))
	if err != nil {
		return nil, err
	}
	r := &reader{buf: buf, off: 1}
	m.unmarshal(r)
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}
