package proto

import (
	"bytes"
	"fmt"
	"testing"
)

// TestRowWireSizeExact checks RowWireSize against the real codec: an
// encoded RowsResponse must grow by exactly RowWireSize per appended row.
func TestRowWireSizeExact(t *testing.T) {
	rows := []Row{
		{ID: 0, Cells: nil},
		{ID: 1, Cells: [][]byte{[]byte("x")}},
		{ID: 127, Cells: [][]byte{[]byte("abc"), nil}},
		{ID: 128, Cells: [][]byte{bytes.Repeat([]byte{0xaa}, 300)}},
		{ID: 1 << 40, Cells: [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}},
	}
	base := len(Encode(&RowsResponse{}))
	acc := &RowsResponse{}
	total := 0
	for i, r := range rows {
		acc.Rows = append(acc.Rows, r)
		total += RowWireSize(r)
		// The row-count uvarint stays one byte for these small counts, so
		// the delta over the empty response is exactly the row payloads.
		if got := len(Encode(acc)) - base; got != total {
			t.Fatalf("after %d rows: encoded delta %d, RowWireSize sum %d", i+1, got, total)
		}
	}
}

// TestMergeRowsChunk verifies stream reassembly semantics: rows append in
// order, columns come from the first chunk, the proof from the last.
func TestMergeRowsChunk(t *testing.T) {
	var dst *RowsResponse
	for i := 0; i < 3; i++ {
		chunk := &RowsResponse{
			Columns: []string{"a", "b"},
			Rows:    []Row{{ID: uint64(2 * i)}, {ID: uint64(2*i + 1)}},
		}
		if i == 2 {
			chunk.Proof = []byte("proof")
		}
		dst = MergeRowsChunk(dst, chunk)
	}
	if len(dst.Rows) != 6 {
		t.Fatalf("merged %d rows", len(dst.Rows))
	}
	for i, r := range dst.Rows {
		if r.ID != uint64(i) {
			t.Fatalf("row %d has id %d", i, r.ID)
		}
	}
	if fmt.Sprint(dst.Columns) != "[a b]" || string(dst.Proof) != "proof" {
		t.Fatalf("columns %v proof %q", dst.Columns, dst.Proof)
	}
}
