package proto

import (
	"bytes"
	"fmt"
	"testing"
)

// TestRowWireSizeExact checks RowWireSize against the real codec: an
// encoded RowsResponse must grow by exactly RowWireSize per appended row.
func TestRowWireSizeExact(t *testing.T) {
	rows := []Row{
		{ID: 0, Cells: nil},
		{ID: 1, Cells: [][]byte{[]byte("x")}},
		{ID: 127, Cells: [][]byte{[]byte("abc"), nil}},
		{ID: 128, Cells: [][]byte{bytes.Repeat([]byte{0xaa}, 300)}},
		{ID: 1 << 40, Cells: [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}},
	}
	base := len(Encode(&RowsResponse{}))
	acc := &RowsResponse{}
	total := 0
	for i, r := range rows {
		acc.Rows = append(acc.Rows, r)
		total += RowWireSize(r)
		// The row-count uvarint stays one byte for these small counts, so
		// the delta over the empty response is exactly the row payloads.
		if got := len(Encode(acc)) - base; got != total {
			t.Fatalf("after %d rows: encoded delta %d, RowWireSize sum %d", i+1, got, total)
		}
	}
}

// TestMergeRowsChunk verifies stream reassembly semantics: rows append in
// order, columns come from the first chunk, the proof from the last.
func TestMergeRowsChunk(t *testing.T) {
	var dst *RowsResponse
	for i := 0; i < 3; i++ {
		chunk := &RowsResponse{
			Columns: []string{"a", "b"},
			Rows:    []Row{{ID: uint64(2 * i)}, {ID: uint64(2*i + 1)}},
		}
		if i == 2 {
			chunk.Proof = []byte("proof")
		}
		dst = MergeRowsChunk(dst, chunk)
	}
	if len(dst.Rows) != 6 {
		t.Fatalf("merged %d rows", len(dst.Rows))
	}
	for i, r := range dst.Rows {
		if r.ID != uint64(i) {
			t.Fatalf("row %d has id %d", i, r.ID)
		}
	}
	if fmt.Sprint(dst.Columns) != "[a b]" || string(dst.Proof) != "proof" {
		t.Fatalf("columns %v proof %q", dst.Columns, dst.Proof)
	}
}

// TestMergeRowsChunkEdgeCases pins the reassembly corners the streaming
// protocol can legally produce.
func TestMergeRowsChunkEdgeCases(t *testing.T) {
	t.Run("proof on a non-final chunk survives", func(t *testing.T) {
		// A v1-style sender may attach the proof early; trailing proof-less
		// chunks must not erase it.
		dst := MergeRowsChunk(nil, &RowsResponse{
			Columns: []string{"a"},
			Rows:    []Row{{ID: 1}},
			Proof:   []byte("early"),
		})
		dst = MergeRowsChunk(dst, &RowsResponse{Rows: []Row{{ID: 2}}})
		if string(dst.Proof) != "early" {
			t.Fatalf("proof %q, want %q", dst.Proof, "early")
		}
		// A later proof-bearing chunk (the normal final chunk) wins.
		dst = MergeRowsChunk(dst, &RowsResponse{Proof: []byte("final")})
		if string(dst.Proof) != "final" {
			t.Fatalf("proof %q, want %q", dst.Proof, "final")
		}
	})
	t.Run("empty first chunk carrying only columns", func(t *testing.T) {
		// An empty scan streams exactly one chunk: the column header and no
		// rows. The merged result must keep the shape.
		dst := MergeRowsChunk(nil, &RowsResponse{Columns: []string{"a", "b"}})
		if len(dst.Rows) != 0 || fmt.Sprint(dst.Columns) != "[a b]" {
			t.Fatalf("rows %d columns %v", len(dst.Rows), dst.Columns)
		}
		// Rows arriving after a header-only chunk still append.
		dst = MergeRowsChunk(dst, &RowsResponse{Rows: []Row{{ID: 7}}})
		if len(dst.Rows) != 1 || dst.Rows[0].ID != 7 {
			t.Fatalf("rows %v", dst.Rows)
		}
	})
	t.Run("columns adopted from the first chunk that has any", func(t *testing.T) {
		dst := MergeRowsChunk(nil, &RowsResponse{})
		dst = MergeRowsChunk(dst, &RowsResponse{Columns: []string{"x"}, Rows: []Row{{ID: 1}}})
		if fmt.Sprint(dst.Columns) != "[x]" {
			t.Fatalf("columns %v", dst.Columns)
		}
		// Divergent later headers are ignored, first wins.
		dst = MergeRowsChunk(dst, &RowsResponse{Columns: []string{"y"}})
		if fmt.Sprint(dst.Columns) != "[x]" {
			t.Fatalf("columns %v after divergent header", dst.Columns)
		}
	})
	t.Run("zero-row responses merge to zero rows", func(t *testing.T) {
		var dst *RowsResponse
		for i := 0; i < 3; i++ {
			dst = MergeRowsChunk(dst, &RowsResponse{Columns: []string{"a"}})
		}
		if len(dst.Rows) != 0 {
			t.Fatalf("rows %d, want 0", len(dst.Rows))
		}
		if dst.Proof != nil {
			t.Fatalf("proof %q, want none", dst.Proof)
		}
	})
}
