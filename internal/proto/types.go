// Package proto defines the wire protocol between the data source (client)
// and the Database Service Providers, with a hand-rolled binary codec so
// every experiment can account for communication cost byte-for-byte — the
// axis on which the paper compares secret sharing against encryption and
// PIR against trivial download.
//
// Providers operate purely in share space: they see 24-byte order-preserving
// shares, 8-byte field shares, and opaque plaintext cells (public data),
// never client values. Column naming conventions (the "#o"/"#f" twin
// columns for each client column) live in the client; the protocol only
// knows column kinds.
package proto

import (
	"errors"
	"fmt"
)

// ColKind describes what a provider-side column holds.
type ColKind uint8

const (
	// KindOPP is a 24-byte order-preserving share (filterable, orderable).
	KindOPP ColKind = 1
	// KindField is an 8-byte GF(2^61-1) Shamir share (summable).
	KindField ColKind = 2
	// KindPlain is an opaque plaintext byte string (public data columns).
	KindPlain ColKind = 3
)

func (k ColKind) String() string {
	switch k {
	case KindOPP:
		return "opp"
	case KindField:
		return "field"
	case KindPlain:
		return "plain"
	default:
		return fmt.Sprintf("ColKind(%d)", uint8(k))
	}
}

// Valid reports whether k is a known kind.
func (k ColKind) Valid() bool { return k >= KindOPP && k <= KindPlain }

// ColumnSpec declares one provider-side column.
type ColumnSpec struct {
	Name string
	Kind ColKind
	// Indexed requests a B+-tree index over the column's cell bytes.
	// Only OPP and Plain columns can be indexed.
	Indexed bool
}

// TableSpec declares a provider-side table.
type TableSpec struct {
	Name    string
	Columns []ColumnSpec
}

// ColumnIndex returns the position of the named column or -1.
func (t *TableSpec) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural sanity of a spec.
func (t *TableSpec) Validate() error {
	if t.Name == "" {
		return errors.New("proto: empty table name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("proto: table %q has no columns", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, c := range t.Columns {
		if c.Name == "" {
			return fmt.Errorf("proto: table %q has an unnamed column", t.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("proto: table %q: duplicate column %q", t.Name, c.Name)
		}
		seen[c.Name] = true
		if !c.Kind.Valid() {
			return fmt.Errorf("proto: table %q column %q: bad kind %d", t.Name, c.Name, c.Kind)
		}
		if c.Indexed && c.Kind == KindField {
			return fmt.Errorf("proto: table %q column %q: field shares cannot be indexed", t.Name, c.Name)
		}
	}
	return nil
}

// Row is one table row: a client-assigned id (identical across providers,
// which is what lets the client zip shares back together) and one cell per
// column in spec order.
type Row struct {
	ID    uint64
	Cells [][]byte
}

// FilterOp selects the comparison a provider applies in share space.
type FilterOp uint8

const (
	// FilterEq matches cells exactly equal to Lo.
	FilterEq FilterOp = 1
	// FilterRange matches cells in the inclusive interval [Lo, Hi].
	FilterRange FilterOp = 2
)

func (op FilterOp) String() string {
	switch op {
	case FilterEq:
		return "eq"
	case FilterRange:
		return "range"
	default:
		return fmt.Sprintf("FilterOp(%d)", uint8(op))
	}
}

// Filter is a share-space predicate on a single column. The provider never
// learns what client-side values the bounds encode.
type Filter struct {
	Col string
	Op  FilterOp
	Lo  []byte
	Hi  []byte // used by FilterRange only
}

// AggOp is a provider-side partial aggregation operator.
type AggOp uint8

const (
	// AggCount returns the number of matching rows.
	AggCount AggOp = 1
	// AggSum returns the field-share sum of ValueCol over matching rows;
	// by share linearity the client interpolates the true sum from k
	// provider partial sums.
	AggSum AggOp = 2
	// AggMin returns the matching row minimizing OrderCol.
	AggMin AggOp = 3
	// AggMax returns the matching row maximizing OrderCol.
	AggMax AggOp = 4
	// AggMedian returns the matching row at the lower-median position of
	// OrderCol. Order preservation makes this the same logical row at every
	// provider.
	AggMedian AggOp = 5
)

func (op AggOp) String() string {
	switch op {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggMedian:
		return "median"
	default:
		return fmt.Sprintf("AggOp(%d)", uint8(op))
	}
}

// ErrorCode classifies provider-side failures.
type ErrorCode uint16

const (
	CodeUnknown ErrorCode = iota
	CodeNoSuchTable
	CodeTableExists
	CodeNoSuchColumn
	CodeBadRequest
	CodeDuplicateRow
	CodeNoSuchRow
	CodeInternal
	// CodeServerBusy is a fast-fail admission rejection: the server's
	// scheduler shed the request before executing it (the tenant's queue
	// was full or the server is draining). The request never ran, so the
	// client may safely retry after a backoff.
	CodeServerBusy
	// CodeNoSuchTx answers a commit (or prepare-less operation) for a
	// transaction id the provider holds no staged state for: the staging is
	// in memory only, so a provider restart between prepare and commit
	// forgets it. The client treats this as "replay the ops via hints", not
	// as a hard rejection.
	CodeNoSuchTx
	// CodeDeadlineExceeded answers a request whose propagated client
	// deadline (ScanRequest.TimeoutMillis) elapsed before the provider
	// finished producing the response. The client has already given up on
	// the call, so the provider stops doing work for it.
	CodeDeadlineExceeded
)

func (c ErrorCode) String() string {
	switch c {
	case CodeNoSuchTable:
		return "no such table"
	case CodeTableExists:
		return "table exists"
	case CodeNoSuchColumn:
		return "no such column"
	case CodeBadRequest:
		return "bad request"
	case CodeDuplicateRow:
		return "duplicate row id"
	case CodeNoSuchRow:
		return "no such row id"
	case CodeInternal:
		return "internal error"
	case CodeServerBusy:
		return "server busy"
	case CodeNoSuchTx:
		return "no such transaction"
	case CodeDeadlineExceeded:
		return "deadline exceeded"
	default:
		return "unknown error"
	}
}

// RemoteError is a provider failure surfaced to the client.
type RemoteError struct {
	Code ErrorCode
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("provider: %s: %s", e.Code, e.Msg)
}
