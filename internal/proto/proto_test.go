package proto

import (
	"errors"
	mrand "math/rand"
	"reflect"
	"strings"
	"testing"
)

// allMessages returns one populated instance of every message type.
func allMessages() []Message {
	spec := TableSpec{
		Name: "employees",
		Columns: []ColumnSpec{
			{Name: "salary#o", Kind: KindOPP, Indexed: true},
			{Name: "salary#f", Kind: KindField},
			{Name: "note", Kind: KindPlain, Indexed: false},
		},
	}
	rows := []Row{
		{ID: 1, Cells: [][]byte{{1, 2, 3}, {4}, nil}},
		{ID: 2, Cells: [][]byte{{9}, {8, 7}, []byte("public")}},
	}
	filter := &Filter{Col: "salary#o", Op: FilterRange, Lo: []byte{1}, Hi: []byte{2, 2}}
	return []Message{
		&PingRequest{},
		&CreateTableRequest{Spec: spec},
		&DropTableRequest{Table: "employees"},
		&ListTablesRequest{},
		&InsertRequest{Table: "employees", Rows: rows},
		&DeleteRequest{Table: "employees", RowIDs: []uint64{1, 99, 1 << 60}},
		&UpdateRequest{Table: "employees", Rows: rows[:1]},
		&ScanRequest{Table: "employees", Filter: filter, Projection: []string{"salary#f"}, Limit: 10, WithProof: true},
		&ScanRequest{Table: "employees"},
		&AggregateRequest{Table: "employees", Op: AggMedian, OrderCol: "salary#o", ValueCol: "salary#f", Filter: filter},
		&AggregateRequest{Table: "employees", Op: AggSum, ValueCol: "salary#f", GroupCol: "dept#o"},
		&GroupResult{Groups: []GroupPartial{
			{Key: []byte{1, 2}, Count: 3, Sum: 999},
			{Key: []byte{9}, Count: 1, Sum: 0},
		}},
		&GroupResult{},
		&JoinRequest{
			LeftTable: "employees", LeftCol: "eid#o",
			RightTable: "managers", RightCol: "eid#o",
			LeftProj: []string{"salary#f"}, RightProj: []string{"mid#f"},
			Filter: &Filter{Col: "dept#o", Op: FilterEq, Lo: []byte{7}},
		},
		&DigestRequest{Table: "employees", Col: "salary#o"},
		&OKResponse{Affected: 42},
		&ErrorResponse{Code: CodeNoSuchTable, Msg: "employees"},
		&RowsResponse{Columns: []string{"a", "b", "c"}, Rows: rows, Proof: []byte{0xde, 0xad}},
		&RowsResponse{},
		&AggResult{Count: 7, Sum: 123456, HasRow: true, Row: rows[0]},
		&AggResult{Count: 0},
		&JoinResult{
			Columns: []string{"salary#f", "mid#f"},
			Rows: []JoinedRow{
				{LeftID: 1, RightID: 2, Cells: [][]byte{{1}, {2}}},
				{LeftID: 3, RightID: 4},
			},
		},
		&DigestResult{Root: []byte{1, 2, 3, 4}, Count: 1000},
		&TablesResponse{Specs: []TableSpec{spec}},
		&TablesResponse{},
		&StatsResponse{
			Tables: 3, Rows: 1 << 40, Pages: 77, ResidentPages: 12,
			ResidentBytes: 64 << 10, CacheBudget: 64 << 20,
			CacheHits: 100, CacheMisses: 9, Evictions: 4, Writebacks: 2,
			WALRecords: 55, CheckpointLSN: 50, CheckpointLag: 5, Checkpoints: 1,
		},
		&StatsResponse{},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range allMessages() {
		buf := Encode(m)
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T round trip mismatch:\n  sent %#v\n  got  %#v", m, m, got)
		}
	}
}

func TestDecodeRejectsEmptyAndUnknown(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Decode([]byte{0xff}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Decode([]byte{0}); err == nil {
		t.Error("kind 0 accepted")
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	buf := Encode(&OKResponse{Affected: 1})
	buf = append(buf, 0xaa)
	if _, err := Decode(buf); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// Every truncation of every message must fail cleanly, never panic, never
// succeed (except prefix-complete messages, which cannot occur because
// Decode demands full consumption).
func TestDecodeTruncationsNeverPanic(t *testing.T) {
	for _, m := range allMessages() {
		buf := Encode(m)
		for cut := 0; cut < len(buf); cut++ {
			if _, err := Decode(buf[:cut]); err == nil {
				// A shorter valid encoding would mean ambiguous framing.
				t.Errorf("%T: truncation to %d bytes decoded successfully", m, cut)
			}
		}
	}
}

// Random mutations must never panic (error or mis-decode are both
// acceptable; the transport adds CRC, this is defense in depth).
func TestDecodeRandomCorruptionNeverPanics(t *testing.T) {
	rng := mrand.New(mrand.NewSource(11))
	for _, m := range allMessages() {
		orig := Encode(m)
		for trial := 0; trial < 200; trial++ {
			buf := append([]byte(nil), orig...)
			for flips := 0; flips < 1+rng.Intn(4); flips++ {
				buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
			}
			_, _ = Decode(buf) // must not panic
		}
	}
}

func TestTableSpecValidate(t *testing.T) {
	good := TableSpec{Name: "t", Columns: []ColumnSpec{{Name: "a", Kind: KindOPP, Indexed: true}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	cases := []TableSpec{
		{Name: "", Columns: []ColumnSpec{{Name: "a", Kind: KindOPP}}},
		{Name: "t"},
		{Name: "t", Columns: []ColumnSpec{{Name: "", Kind: KindOPP}}},
		{Name: "t", Columns: []ColumnSpec{{Name: "a", Kind: KindOPP}, {Name: "a", Kind: KindPlain}}},
		{Name: "t", Columns: []ColumnSpec{{Name: "a", Kind: 0}}},
		{Name: "t", Columns: []ColumnSpec{{Name: "a", Kind: KindField, Indexed: true}}},
	}
	for i, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestColumnIndex(t *testing.T) {
	spec := TableSpec{Name: "t", Columns: []ColumnSpec{
		{Name: "a", Kind: KindOPP}, {Name: "b", Kind: KindField},
	}}
	if got := spec.ColumnIndex("b"); got != 1 {
		t.Errorf("ColumnIndex(b) = %d", got)
	}
	if got := spec.ColumnIndex("zz"); got != -1 {
		t.Errorf("ColumnIndex(zz) = %d", got)
	}
}

func TestStringers(t *testing.T) {
	if KindOPP.String() != "opp" || KindField.String() != "field" || KindPlain.String() != "plain" {
		t.Error("ColKind strings wrong")
	}
	if !strings.Contains(ColKind(9).String(), "9") {
		t.Error("unknown ColKind string")
	}
	if FilterEq.String() != "eq" || FilterRange.String() != "range" {
		t.Error("FilterOp strings wrong")
	}
	if !strings.Contains(FilterOp(9).String(), "9") {
		t.Error("unknown FilterOp string")
	}
	for op, want := range map[AggOp]string{
		AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max", AggMedian: "median",
	} {
		if op.String() != want {
			t.Errorf("AggOp %d = %q", op, op.String())
		}
	}
	if !strings.Contains(AggOp(99).String(), "99") {
		t.Error("unknown AggOp string")
	}
}

func TestRemoteError(t *testing.T) {
	e := &RemoteError{Code: CodeNoSuchTable, Msg: "employees"}
	if !strings.Contains(e.Error(), "no such table") || !strings.Contains(e.Error(), "employees") {
		t.Errorf("error text: %q", e.Error())
	}
	var codes []ErrorCode
	for c := CodeUnknown; c <= CodeInternal; c++ {
		codes = append(codes, c)
	}
	for _, c := range codes {
		if c.String() == "" {
			t.Errorf("code %d has empty string", c)
		}
	}
}

func TestEncodeSizeAccounting(t *testing.T) {
	// An insert of 1000 rows with one 24-byte OPP cell and one 8-byte field
	// cell should be close to the raw payload size — the protocol must not
	// bloat communication-cost measurements.
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{ID: uint64(i), Cells: [][]byte{make([]byte, 24), make([]byte, 8)}}
	}
	buf := Encode(&InsertRequest{Table: "t", Rows: rows})
	payload := 1000 * (24 + 8)
	if len(buf) > payload+payload/4+64 {
		t.Errorf("encoded %d bytes for %d payload bytes (overhead too high)", len(buf), payload)
	}
}

func BenchmarkEncodeInsert1000(b *testing.B) {
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{ID: uint64(i), Cells: [][]byte{make([]byte, 24), make([]byte, 8)}}
	}
	msg := &InsertRequest{Table: "t", Rows: rows}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(msg)
	}
}

func BenchmarkDecodeInsert1000(b *testing.B) {
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{ID: uint64(i), Cells: [][]byte{make([]byte, 24), make([]byte, 8)}}
	}
	buf := Encode(&InsertRequest{Table: "t", Rows: rows})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
