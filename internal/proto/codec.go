package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoding limits protect both sides from hostile or corrupt frames.
const (
	maxStringLen = 1 << 16
	maxCellLen   = 1 << 20
	maxListLen   = 1 << 24
)

// ErrTruncated reports a frame shorter than its declared contents.
var ErrTruncated = errors.New("proto: truncated message")

// writer accumulates a message body.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *writer) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// reader consumes a message body, latching the first error.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	if r.off+2 > len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// length reads a uvarint length bounded by max.
func (r *reader) length(max uint64) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > max {
		r.fail(fmt.Errorf("proto: length %d exceeds limit %d", n, max))
		return 0
	}
	if n > math.MaxInt32 {
		r.fail(fmt.Errorf("proto: absurd length %d", n))
		return 0
	}
	return int(n)
}

func (r *reader) bytes() []byte {
	n := r.length(maxCellLen)
	if r.err != nil || n == 0 {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += n
	return out
}

func (r *reader) str() string {
	n := r.length(maxStringLen)
	if r.err != nil {
		return ""
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("proto: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// Shared sub-structure codecs.

func writeSpec(w *writer, t *TableSpec) {
	w.str(t.Name)
	w.uvarint(uint64(len(t.Columns)))
	for _, c := range t.Columns {
		w.str(c.Name)
		w.u8(uint8(c.Kind))
		w.bool(c.Indexed)
	}
}

func readSpec(r *reader) TableSpec {
	var t TableSpec
	t.Name = r.str()
	n := r.length(4096)
	if r.err != nil {
		return t
	}
	t.Columns = make([]ColumnSpec, n)
	for i := range t.Columns {
		t.Columns[i].Name = r.str()
		t.Columns[i].Kind = ColKind(r.u8())
		t.Columns[i].Indexed = r.bool()
	}
	return t
}

func writeRow(w *writer, row Row) {
	w.uvarint(row.ID)
	w.uvarint(uint64(len(row.Cells)))
	for _, c := range row.Cells {
		w.bytes(c)
	}
}

func readRow(r *reader) Row {
	var row Row
	row.ID = r.uvarint()
	n := r.length(4096)
	if r.err != nil || n == 0 {
		return row
	}
	row.Cells = make([][]byte, n)
	for i := range row.Cells {
		row.Cells[i] = r.bytes()
	}
	return row
}

func writeRows(w *writer, rows []Row) {
	w.uvarint(uint64(len(rows)))
	for _, row := range rows {
		writeRow(w, row)
	}
}

func readRows(r *reader) []Row {
	n := r.length(maxListLen)
	if r.err != nil || n == 0 {
		return nil
	}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = readRow(r)
		if r.err != nil {
			return nil
		}
	}
	return rows
}

func writeFilter(w *writer, f *Filter) {
	if f == nil {
		w.bool(false)
		return
	}
	w.bool(true)
	w.str(f.Col)
	w.u8(uint8(f.Op))
	w.bytes(f.Lo)
	w.bytes(f.Hi)
}

func readFilter(r *reader) *Filter {
	if !r.bool() || r.err != nil {
		return nil
	}
	f := &Filter{}
	f.Col = r.str()
	f.Op = FilterOp(r.u8())
	f.Lo = r.bytes()
	f.Hi = r.bytes()
	return f
}

func writeStrings(w *writer, ss []string) {
	w.uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

func readStrings(r *reader) []string {
	n := r.length(4096)
	if r.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = r.str()
	}
	return ss
}

func writeU64s(w *writer, vs []uint64) {
	w.uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.u64(v)
	}
}

func readU64s(r *reader) []uint64 {
	n := r.length(maxListLen)
	if r.err != nil || n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.u64()
	}
	return vs
}
