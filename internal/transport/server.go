package transport

import (
	"bufio"
	"errors"
	"net"
	"runtime"
	"sync"
	"time"

	"sssdb/internal/proto"
)

// Server tuning defaults.
const (
	defaultMaxInflight   = 32
	defaultChunkBytes    = 256 << 10
	acceptBackoffInitial = 5 * time.Millisecond
	acceptBackoffCap     = time.Second
	// outQueueLen buffers response frames between handler workers and the
	// per-connection writer goroutine.
	outQueueLen = 64
	// defaultWriteStall bounds how long the writer goroutine may sit in one
	// socket write before the connection is declared dead. With a shared
	// handler pool, a client that stops reading would otherwise wedge pool
	// workers behind its full response queue indefinitely.
	defaultWriteStall = 30 * time.Second
)

// ServerConfig tunes a provider-side transport server.
type ServerConfig struct {
	// MaxInflight caps concurrently-executing handlers across the WHOLE
	// server (it was per-connection before the admission scheduler): this
	// is the global inflight budget the per-tenant queues drain into, so N
	// connections can no longer overcommit the store N-fold. 0 means the
	// default (32, floored at 2×GOMAXPROCS).
	MaxInflight int
	// MaxQueue bounds pending (admitted-but-not-executing) requests per
	// tenant; a request arriving at a full queue is shed immediately with
	// CodeServerBusy instead of waiting. 0 means the default
	// (8×MaxInflight); negative means 1.
	MaxQueue int
	// TenantWeights sets deficit-round-robin weights by tenant id (the id
	// the client sent in its hello). Unlisted tenants weigh 1. A tenant
	// with weight w gets w shares of the inflight budget under contention,
	// however many connections it opens.
	TenantWeights map[string]int
	// ChunkBytes is the streaming threshold and chunk size target: a
	// RowsResponse whose rows exceed it is sent as a sequence of row-chunk
	// frames of roughly ChunkBytes each, bounding encode-buffer memory.
	// 0 means the default (256 KiB); negative disables streaming.
	ChunkBytes int
	// WriteStall bounds a single blocking socket write; a connection whose
	// client stops reading for longer is closed so shared pool workers
	// cannot be held hostage by its backpressure. 0 means the default
	// (30s); negative disables the bound.
	WriteStall time.Duration
}

func (cfg ServerConfig) withDefaults() ServerConfig {
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = defaultMaxInflight
		if floor := 2 * runtime.GOMAXPROCS(0); cfg.MaxInflight < floor {
			cfg.MaxInflight = floor
		}
	}
	switch {
	case cfg.MaxQueue == 0:
		cfg.MaxQueue = 8 * cfg.MaxInflight
	case cfg.MaxQueue < 0:
		cfg.MaxQueue = 1
	}
	if cfg.ChunkBytes == 0 {
		cfg.ChunkBytes = defaultChunkBytes
	}
	switch {
	case cfg.WriteStall == 0:
		cfg.WriteStall = defaultWriteStall
	case cfg.WriteStall < 0:
		cfg.WriteStall = 0
	}
	return cfg
}

// Server accepts framed connections and dispatches them to a Handler
// through a server-wide admission scheduler: requests from every
// connection land in per-tenant FIFO queues (the tenant is announced in
// the connection hello; legacy and anonymous connections share one queue)
// drained deficit-weighted round-robin into a global worker budget.
// Requests beyond a tenant's queue bound are shed fast with
// CodeServerBusy. Legacy (v1) connections are served one request at a
// time, in order, through the same scheduler.
type Server struct {
	handler  Handler
	cfg      ServerConfig
	sched    *scheduler
	ln       net.Listener
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	done     chan struct{}
	quiesced sync.Once
	closed   sync.Once
	wg       sync.WaitGroup
}

// NewServer starts serving h on ln with default configuration. It returns
// immediately; use Close to stop.
func NewServer(ln net.Listener, h Handler) *Server {
	return NewServerWith(ln, h, ServerConfig{})
}

// NewServerWith starts serving h on ln with explicit configuration.
func NewServerWith(ln net.Listener, h Handler, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		handler: h,
		cfg:     cfg,
		sched:   newScheduler(cfg.MaxInflight, cfg.MaxQueue, cfg.TenantWeights),
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// SchedStats returns a snapshot of the admission scheduler (queue depth,
// admitted/shed counts, admission-wait and handler-latency quantiles).
func (s *Server) SchedStats() SchedStats { return s.sched.stats() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := acceptBackoffInitial
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			// Transient accept error (EMFILE, a dropped handshake, ...):
			// back off exponentially instead of spinning the CPU against a
			// persistent failure, and keep serving.
			select {
			case <-s.done:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > acceptBackoffCap {
				backoff = acceptBackoffCap
			}
			continue
		}
		backoff = acceptBackoffInitial
		s.mu.Lock()
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		nc.Close()
	}()
	br := bufio.NewReaderSize(nc, connBufSize)
	bw := bufio.NewWriterSize(nc, connBufSize)
	// The first frame decides the protocol version: a hello upgrades the
	// connection to v2 (and names the tenant the session belongs to);
	// anything else is a legacy client's first request.
	first, err := readFrame(br)
	if err != nil {
		return
	}
	if _, tenant, isHello := parseNegotiation(first, helloPrefix); isHello {
		if err := writeFrame(bw, ackBody(protoVersionMux)); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		s.serveMux(nc, br, bw, string(tenant))
		return
	}
	if !s.serveLegacyRequest(bw, first) {
		return
	}
	for {
		body, err := readFrame(br)
		if err != nil {
			return // client went away or sent garbage; drop the connection
		}
		if !s.serveLegacyRequest(bw, body) {
			return
		}
	}
}

// handleOne runs one buffered request through the handler, attaching the
// scheduler's serving stats to stats replies so every ping doubles as a
// queue-pressure probe.
func (s *Server) handleOne(req proto.Message) proto.Message {
	resp := s.handler.Handle(req)
	if sr, ok := resp.(*proto.StatsResponse); ok {
		s.sched.fillStats(sr)
	}
	return resp
}

// serveLegacyRequest handles one v1 request body (through the admission
// scheduler, tenant "") and reports whether the connection is still usable.
func (s *Server) serveLegacyRequest(bw *bufio.Writer, body []byte) bool {
	req, err := proto.Decode(body)
	var resp proto.Message
	if err != nil {
		resp = &proto.ErrorResponse{Code: proto.CodeBadRequest, Msg: err.Error()}
	} else {
		done := make(chan proto.Message, 1)
		admitted := s.sched.submit("", &schedItem{enq: time.Now(), run: func() {
			done <- s.handleOne(req)
		}, shed: func() {
			done <- busyResponse()
		}})
		if admitted {
			resp = <-done
		} else {
			resp = busyResponse()
		}
	}
	if err := writeFrame(bw, proto.Encode(resp)); err != nil {
		return false
	}
	return bw.Flush() == nil
}

// outFrame is one response frame queued for the writer goroutine.
type outFrame struct {
	id    uint64
	flags uint8
	body  []byte
}

// serveMux runs the v2 loop: the read side decodes request frames and
// submits each to the server-wide scheduler under this connection's
// tenant; scheduler workers push response frames — possibly several chunk
// frames per response — into out, and a single writer goroutine serializes
// them onto the socket, so responses complete in whatever order the
// handlers finish. Requests the scheduler sheds are answered inline with
// CodeServerBusy without consuming a worker.
func (s *Server) serveMux(nc net.Conn, br *bufio.Reader, bw *bufio.Writer, tenant string) {
	out := make(chan outFrame, outQueueLen)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		s.writeLoop(nc, bw, out)
	}()
	// pending tracks requests this connection has handed to the scheduler
	// (queued or executing); out may not close until they have produced
	// their frames.
	var pending sync.WaitGroup
	// cancels maps in-flight request ids to their cancellation signal. The
	// read loop registers an id before submitting its work item and
	// processes frames in order, so a cancel frame (which the client writes
	// after the request) can never observe its request as unregistered. A
	// cancel for a still-queued request closes the signal early, and the
	// streaming path checks it before producing anything.
	var cancelMu sync.Mutex
	cancels := make(map[uint64]chan struct{})
	unregister := func(id uint64) {
		cancelMu.Lock()
		delete(cancels, id)
		cancelMu.Unlock()
	}
	for {
		id, flags, body, err := readFrameV2(br)
		if err != nil {
			break
		}
		if flags&flagCancel != 0 {
			cancelMu.Lock()
			if ch, ok := cancels[id]; ok {
				close(ch)
				delete(cancels, id)
			}
			cancelMu.Unlock()
			continue // cancel frames carry no body and get no response
		}
		req, err := proto.Decode(body)
		if err != nil {
			bad := &proto.ErrorResponse{Code: proto.CodeBadRequest, Msg: err.Error()}
			out <- outFrame{id: id, flags: flagFinal, body: proto.Encode(bad)}
			continue
		}
		cancel := make(chan struct{})
		cancelMu.Lock()
		cancels[id] = cancel
		cancelMu.Unlock()
		pending.Add(1)
		admitted := s.sched.submit(tenant, &schedItem{enq: time.Now(), run: func() {
			defer pending.Done()
			defer unregister(id)
			s.runRequest(id, req, cancel, out)
		}, shed: func() {
			unregister(id)
			out <- outFrame{id: id, flags: flagFinal, body: proto.Encode(busyResponse())}
			pending.Done()
		}})
		if !admitted {
			unregister(id)
			pending.Done()
			out <- outFrame{id: id, flags: flagFinal, body: proto.Encode(busyResponse())}
		}
	}
	pending.Wait()
	close(out)
	writerWG.Wait()
}

// runRequest executes one admitted request, preferring the streaming path
// for handlers that support it.
func (s *Server) runRequest(id uint64, req proto.Message, cancel chan struct{}, out chan<- outFrame) {
	if s.cfg.ChunkBytes > 0 {
		if sh, ok := s.handler.(StreamHandler); ok {
			if s.serveStream(sh, id, req, cancel, out) {
				return
			}
		}
	}
	resp := s.handleOne(req)
	// One handler emits its frames in order into the shared queue;
	// interleaving with other responses is fine — every frame carries its
	// request id.
	for _, f := range s.responseFrames(id, resp) {
		out <- f
	}
}

// serveStream runs one request through the handler's streaming path,
// emitting each batch as a chunk frame as it is produced. It reports
// whether the handler accepted the request; false sends nothing and the
// caller falls back to the buffered Handle path. Because chunk frames must
// mark the last one final, each emitted batch is held until the next
// arrives (or the stream ends): the cost is one batch of extra latency at
// the tail, not a buffered result set.
func (s *Server) serveStream(sh StreamHandler, id uint64, req proto.Message, cancel <-chan struct{}, out chan<- outFrame) bool {
	var held *proto.RowsResponse
	handled, err := sh.HandleStream(req, func(chunk *proto.RowsResponse) error {
		select {
		case <-cancel:
			return ErrStreamCanceled
		default:
		}
		if held != nil {
			out <- outFrame{id: id, flags: flagChunk, body: proto.Encode(held)}
		}
		held = chunk
		return nil
	})
	if !handled {
		return false
	}
	switch {
	case err == nil:
		if held == nil {
			// Defensive: a handled stream should emit its shape even when
			// empty; frame an empty result so the client is not left hanging.
			held = &proto.RowsResponse{}
		}
		out <- outFrame{id: id, flags: flagChunk | flagFinal, body: proto.Encode(held)}
	case errors.Is(err, ErrStreamCanceled):
		// The client abandoned the id before sending the cancel frame, so
		// any response would be dropped on arrival; send nothing.
	default:
		// Mid-stream failure: surface the provider's error code as the
		// final frame. Chunks already sent are discarded client-side.
		resp := &proto.ErrorResponse{Code: proto.CodeInternal, Msg: err.Error()}
		var re *proto.RemoteError
		if errors.As(err, &re) {
			resp = &proto.ErrorResponse{Code: re.Code, Msg: re.Msg}
		}
		out <- outFrame{id: id, flags: flagFinal, body: proto.Encode(resp)}
	}
	return true
}

// writeLoop drains response frames onto the socket, flushing only when the
// queue runs dry so bursts of small responses batch into few syscalls. On
// a write error it closes the socket (unblocking the read loop) and keeps
// draining so handler workers never block on a dead connection. Each write
// is bounded by WriteStall: a client that stops reading long enough to
// stall the writer is treated as dead rather than allowed to wedge shared
// pool workers behind its full response queue.
func (s *Server) writeLoop(nc net.Conn, bw *bufio.Writer, out <-chan outFrame) {
	failed := false
	arm := func() {
		if s.cfg.WriteStall > 0 {
			nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteStall))
		}
	}
	for f := range out {
		if failed {
			continue
		}
		arm()
		if err := writeFrameV2(bw, f.id, f.flags, f.body); err != nil {
			failed = true
			nc.Close()
			continue
		}
		if len(out) == 0 {
			arm()
			if err := bw.Flush(); err != nil {
				failed = true
				nc.Close()
			}
		}
	}
	if !failed {
		arm()
		bw.Flush()
	}
}

// responseFrames encodes one response as its on-wire frame sequence. Row
// responses larger than ChunkBytes stream as row chunks — each a complete,
// independently-decodable RowsResponse carrying the column header, with
// the completeness proof on the final chunk — so neither side ever buffers
// the whole result in one contiguous encode buffer.
func (s *Server) responseFrames(id uint64, resp proto.Message) []outFrame {
	rr, isRows := resp.(*proto.RowsResponse)
	if !isRows || s.cfg.ChunkBytes <= 0 || len(rr.Rows) < 2 {
		return []outFrame{{id: id, flags: flagFinal, body: proto.Encode(resp)}}
	}
	// Greedily group rows by exact wire size.
	var cuts []int
	size := 0
	for i, row := range rr.Rows {
		rs := proto.RowWireSize(row)
		if size > 0 && size+rs > s.cfg.ChunkBytes {
			cuts = append(cuts, i)
			size = 0
		}
		size += rs
	}
	if len(cuts) == 0 {
		return []outFrame{{id: id, flags: flagFinal, body: proto.Encode(resp)}}
	}
	cuts = append(cuts, len(rr.Rows))
	frames := make([]outFrame, 0, len(cuts))
	start := 0
	for i, end := range cuts {
		chunk := &proto.RowsResponse{Columns: rr.Columns, Rows: rr.Rows[start:end]}
		flags := uint8(flagChunk)
		if i == len(cuts)-1 {
			chunk.Proof = rr.Proof
			flags |= flagFinal
		}
		frames = append(frames, outFrame{id: id, flags: flags, body: proto.Encode(chunk)})
		start = end
	}
	return frames
}

// quiesce stops accepting new connections. Idempotent.
func (s *Server) quiesce() error {
	var err error
	s.quiesced.Do(func() {
		close(s.done)
		err = s.ln.Close()
	})
	return err
}

// Shutdown gracefully stops the server: it stops accepting connections,
// sheds new requests with CodeServerBusy, waits up to timeout for queued
// and executing requests to finish, then closes every connection and
// stops the scheduler. It returns true when the drain completed within the
// timeout (false means remaining work was cut off by the close).
func (s *Server) Shutdown(timeout time.Duration) bool {
	s.quiesce()
	s.sched.drain()
	drained := s.sched.waitIdle(timeout)
	if drained {
		// Close only the read half of each connection: its read loop sees
		// EOF and winds down through the normal path, which flushes any
		// response frames still queued for the writer before the socket
		// closes. A full close here could cut off an answer the drain just
		// finished computing.
		s.mu.Lock()
		for nc := range s.conns {
			if cr, ok := nc.(interface{ CloseRead() error }); ok {
				cr.CloseRead()
			} else {
				nc.Close()
			}
		}
		s.mu.Unlock()
		s.wg.Wait()
	}
	s.Close()
	return drained
}

// Close stops accepting, closes all connections, and waits for handlers.
// It is safe to call more than once.
func (s *Server) Close() error {
	var err error
	s.closed.Do(func() {
		err = s.quiesce()
		s.mu.Lock()
		for nc := range s.conns {
			nc.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		s.sched.close()
	})
	return err
}
