// Package transport moves protocol messages between the data source and
// providers. Two interchangeable implementations exist: a framed TCP
// transport for real deployments (cmd/dasd) and an in-process loopback that
// runs the identical encode/decode path — so unit tests and benchmarks
// measure exactly the bytes a network deployment would move, without socket
// noise.
//
// The package also provides fault injection (crash, delay, response
// corruption) used by the fault-tolerance and malicious-provider
// experiments (E10, E14).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sssdb/internal/proto"
)

// maxFrameSize bounds one frame; matches the proto list limits.
const maxFrameSize = 256 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// ErrFrameCorrupt reports a frame failing its checksum.
var ErrFrameCorrupt = errors.New("transport: corrupt frame")

// Stats counts traffic through a Conn. Byte counts include framing
// overhead, mirroring what a network capture would show.
type Stats struct {
	BytesSent     uint64
	BytesReceived uint64
	Calls         uint64
}

// Conn is a synchronous request/response channel to one provider.
// Implementations are safe for concurrent use; calls are serialized.
type Conn interface {
	// Call sends a request and waits for the provider's response.
	Call(req proto.Message) (proto.Message, error)
	// Stats returns a snapshot of traffic counters.
	Stats() Stats
	// Close releases the connection.
	Close() error
}

// Handler is the provider side of a transport: it consumes one request and
// produces one response.
type Handler interface {
	Handle(req proto.Message) proto.Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(proto.Message) proto.Message

// Handle calls f.
func (f HandlerFunc) Handle(req proto.Message) proto.Message { return f(req) }

// counters is an embedded atomic stats block.
type counters struct {
	sent  atomic.Uint64
	recv  atomic.Uint64
	calls atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		BytesSent:     c.sent.Load(),
		BytesReceived: c.recv.Load(),
		Calls:         c.calls.Load(),
	}
}

// frameLen returns the on-wire size of a message body: 8-byte header
// (length + crc) plus the payload.
func frameLen(body []byte) uint64 { return uint64(len(body)) + 8 }

// writeFrame writes one length+crc framed message body.
func writeFrame(w io.Writer, body []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one framed message body.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	want := binary.BigEndian.Uint32(hdr[4:8])
	if length > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if crc32.Checksum(body, crcTable) != want {
		return nil, ErrFrameCorrupt
	}
	return body, nil
}

// --- In-process loopback ---

type localConn struct {
	counters
	mu      sync.Mutex
	handler Handler
	closed  bool
}

// NewLocal returns a Conn that delivers requests to h in-process, running
// the full encode/decode path in both directions so byte accounting matches
// a network deployment exactly.
func NewLocal(h Handler) Conn {
	return &localConn{handler: h}
}

func (c *localConn) Call(req proto.Message) (proto.Message, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	reqBody := proto.Encode(req)
	c.sent.Add(frameLen(reqBody))
	c.calls.Add(1)
	// Decode on the "server side" to guarantee the handler sees exactly
	// what a remote server would.
	serverReq, err := proto.Decode(reqBody)
	if err != nil {
		return nil, err
	}
	resp := c.handler.Handle(serverReq)
	respBody := proto.Encode(resp)
	c.recv.Add(frameLen(respBody))
	return proto.Decode(respBody)
}

func (c *localConn) Stats() Stats { return c.snapshot() }

func (c *localConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// --- TCP ---

type tcpConn struct {
	counters
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
}

// Dial connects to a provider at addr (host:port).
func Dial(addr string) (Conn, error) {
	return DialTimeout(addr, 0)
}

// DialTimeout connects with a per-call deadline: any Call that does not
// complete within timeout fails (and the caller's failover logic treats the
// provider as down). Zero disables deadlines.
func DialTimeout(addr string, timeout time.Duration) (Conn, error) {
	dialTimeout := timeout
	if dialTimeout == 0 {
		dialTimeout = 30 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &tcpConn{conn: nc, timeout: timeout}, nil
}

func (c *tcpConn) Call(req proto.Message) (proto.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrClosed
	}
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
	}
	body := proto.Encode(req)
	if err := writeFrame(c.conn, body); err != nil {
		return nil, err
	}
	c.sent.Add(frameLen(body))
	c.calls.Add(1)
	respBody, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	c.recv.Add(frameLen(respBody))
	return proto.Decode(respBody)
}

func (c *tcpConn) Stats() Stats { return c.snapshot() }

func (c *tcpConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Server accepts framed connections and dispatches them to a Handler.
type Server struct {
	handler Handler
	ln      net.Listener
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewServer starts serving h on ln. It returns immediately; use Close to
// stop.
func NewServer(ln net.Listener, h Handler) *Server {
	s := &Server{
		handler: h,
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				// Transient accept error: keep serving.
				continue
			}
		}
		s.mu.Lock()
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(nc)
	}
}

func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		nc.Close()
	}()
	for {
		body, err := readFrame(nc)
		if err != nil {
			return // client went away or sent garbage; drop the connection
		}
		req, err := proto.Decode(body)
		var resp proto.Message
		if err != nil {
			resp = &proto.ErrorResponse{Code: proto.CodeBadRequest, Msg: err.Error()}
		} else {
			resp = s.handler.Handle(req)
		}
		if err := writeFrame(nc, proto.Encode(resp)); err != nil {
			return
		}
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
