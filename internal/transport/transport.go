// Package transport moves protocol messages between the data source and
// providers. Two interchangeable implementations exist: a framed TCP
// transport for real deployments (cmd/dasd) and an in-process loopback that
// runs the identical encode/decode path — so unit tests and benchmarks
// measure exactly the bytes a network deployment would move, without socket
// noise.
//
// The TCP transport speaks two protocol versions, negotiated per
// connection:
//
//   - v1 (legacy): one request in flight per connection; each frame is
//     [len u32][crc u32][body], and the server replies strictly in order.
//   - v2 (multiplexed): frames carry a request ID and flags
//     ([len u32][crc u32][id u64][flags u8][body]), any number of requests
//     share one connection, the server dispatches them to a bounded worker
//     pool and replies out of order, and large row responses stream back as
//     a chunked sequence of frames with bounded buffering on both ends.
//
// Negotiation keeps old and new peers interoperable: a v2 client opens
// with a hello frame that a v1 server rejects as an undecodable request
// (the client then falls back to v1), while a v1 client's first frame is a
// real request, which a v2 server recognizes and serves in legacy mode.
//
// The package also provides fault injection (crash, delay, response
// corruption) used by the fault-tolerance and malicious-provider
// experiments (E10, E14).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sssdb/internal/proto"
)

// maxFrameSize bounds one frame; matches the proto list limits.
const maxFrameSize = 256 << 20

// Protocol versions a connection can negotiate.
const (
	protoVersionLegacy = 1
	protoVersionMux    = 2
)

// v2 frame flags.
const (
	// flagFinal marks the last frame of a response (or a whole request).
	flagFinal = 0x01
	// flagChunk marks a frame carrying part of a streamed row response.
	flagChunk = 0x02
	// flagCancel, on a client→server frame, asks the server to stop
	// producing the response for this request id (LIMIT reached, caller
	// gone). The body is empty. Cancellation is advisory and asymmetric:
	// the client has already abandoned the id, so any frames that race the
	// cancel are dropped on arrival.
	flagCancel = 0x04
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// ErrFrameCorrupt reports a frame failing its checksum.
var ErrFrameCorrupt = errors.New("transport: corrupt frame")

// ErrStreamCanceled is returned by a StreamHandler's emit callback once the
// client has canceled the request; the handler should stop producing and
// return it (or any error wrapping it).
var ErrStreamCanceled = errors.New("transport: stream canceled by client")

// Stats counts traffic through a Conn. Byte counts include framing
// overhead (and, for v2 connections, the negotiation handshake), mirroring
// what a network capture would show. Calls counts logical request/response
// exchanges, not frames: a response streamed as several chunk frames is
// still one call.
type Stats struct {
	BytesSent     uint64
	BytesReceived uint64
	Calls         uint64
}

// Conn is a request/response channel to one provider. Implementations are
// safe for concurrent use; the multiplexed TCP transport runs concurrent
// calls truly in parallel on one connection, while legacy (v1) and
// loopback connections serialize them.
type Conn interface {
	// Call sends a request and waits for the provider's response.
	Call(req proto.Message) (proto.Message, error)
	// Stats returns a snapshot of traffic counters.
	Stats() Stats
	// Close releases the connection.
	Close() error
}

// StreamCaller is optionally implemented by Conns that can deliver a large
// row response incrementally instead of buffering it whole.
type StreamCaller interface {
	// CallStream sends a scan-shaped request and invokes yield once per
	// arriving row chunk, in order. The request's deadline (if any) covers
	// the whole stream. A non-nil error from yield abandons the call.
	CallStream(req proto.Message, yield func(*proto.RowsResponse) error) error
}

// DeadlineCaller is optionally implemented by Conns that can bound one
// call by an absolute wall-clock deadline, tighter than (and composing
// with) any connection-level timeout. A call that cannot complete by the
// deadline fails with an error matching os.ErrDeadlineExceeded.
type DeadlineCaller interface {
	CallDeadline(req proto.Message, deadline time.Time) (proto.Message, error)
}

// StreamDeadlineCaller is the streaming form of DeadlineCaller: the
// deadline covers the entire chunk stream.
type StreamDeadlineCaller interface {
	CallStreamDeadline(req proto.Message, deadline time.Time, yield func(*proto.RowsResponse) error) error
}

// CallWithDeadline invokes req on c under an absolute deadline. A zero
// deadline means none. Conns that do not implement DeadlineCaller get a
// best-effort bound: the call fails fast if the deadline has already
// passed, and otherwise runs unbounded (the in-process loopback cannot
// preempt a synchronous handler).
func CallWithDeadline(c Conn, req proto.Message, deadline time.Time) (proto.Message, error) {
	if deadline.IsZero() {
		return c.Call(req)
	}
	if dc, ok := c.(DeadlineCaller); ok {
		return dc.CallDeadline(req, deadline)
	}
	if time.Until(deadline) <= 0 {
		return nil, os.ErrDeadlineExceeded
	}
	return c.Call(req)
}

// CallStreamWithDeadline is CallStream under an absolute deadline covering
// the whole chunk stream; zero means none.
func CallStreamWithDeadline(c Conn, req proto.Message, deadline time.Time, yield func(*proto.RowsResponse) error) error {
	if deadline.IsZero() {
		return CallStream(c, req, yield)
	}
	if sc, ok := c.(StreamDeadlineCaller); ok {
		return sc.CallStreamDeadline(req, deadline, yield)
	}
	if time.Until(deadline) <= 0 {
		return os.ErrDeadlineExceeded
	}
	return CallStream(c, req, yield)
}

// CallStream invokes req on c, delivering row chunks to yield as they
// arrive when c supports streaming, and falling back to one buffered Call
// (yielding the whole response once) when it does not. Provider-side
// errors are surfaced as *proto.RemoteError.
func CallStream(c Conn, req proto.Message, yield func(*proto.RowsResponse) error) error {
	if sc, ok := c.(StreamCaller); ok {
		return sc.CallStream(req, yield)
	}
	resp, err := c.Call(req)
	if err != nil {
		return err
	}
	switch m := resp.(type) {
	case *proto.RowsResponse:
		return yield(m)
	case *proto.ErrorResponse:
		return m.Err()
	default:
		return fmt.Errorf("transport: unexpected %T in row stream", resp)
	}
}

// Handler is the provider side of a transport: it consumes one request and
// produces one response. The multiplexed server invokes Handle from
// concurrent worker goroutines, so implementations must be safe for
// concurrent use.
type Handler interface {
	Handle(req proto.Message) proto.Message
}

// StreamHandler is optionally implemented by Handlers that can produce a
// row response incrementally, batch by batch, instead of materializing it.
// HandleStream reports handled=false (without having called emit) when the
// request has no streaming form — the transport then falls back to Handle.
// When handled, emit is called once per batch in order; emit returns
// ErrStreamCanceled once the client cancels, and the handler must then stop
// and propagate the error. A handled stream with a nil error must emit at
// least one batch (an empty RowsResponse carrying Columns for empty
// results) so the receiver learns the result shape.
type StreamHandler interface {
	HandleStream(req proto.Message, emit func(*proto.RowsResponse) error) (handled bool, err error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(proto.Message) proto.Message

// Handle calls f.
func (f HandlerFunc) Handle(req proto.Message) proto.Message { return f(req) }

// counters is an embedded atomic stats block.
type counters struct {
	sent  atomic.Uint64
	recv  atomic.Uint64
	calls atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		BytesSent:     c.sent.Load(),
		BytesReceived: c.recv.Load(),
		Calls:         c.calls.Load(),
	}
}

// --- Legacy (v1) framing ---

// frameLen returns the on-wire size of a legacy message body: 8-byte
// header (length + crc) plus the payload.
func frameLen(body []byte) uint64 { return uint64(len(body)) + 8 }

// writeFrame writes one length+crc framed message body.
func writeFrame(w io.Writer, body []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one framed message body.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	want := binary.BigEndian.Uint32(hdr[4:8])
	if length > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if crc32.Checksum(body, crcTable) != want {
		return nil, ErrFrameCorrupt
	}
	return body, nil
}

// --- v2 framing ---

// v2HeaderLen is the v2 frame header: length, crc, request id, flags.
const v2HeaderLen = 4 + 4 + 8 + 1

// frameLenV2 returns the on-wire size of a v2 frame for body.
func frameLenV2(body []byte) uint64 { return uint64(len(body)) + v2HeaderLen }

// writeFrameV2 writes one multiplexed frame.
func writeFrameV2(w io.Writer, id uint64, flags uint8, body []byte) error {
	var hdr [v2HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	binary.BigEndian.PutUint64(hdr[8:16], id)
	hdr[16] = flags
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// appendFrameV2 appends one multiplexed frame to dst, for callers that
// batch several frames into a single socket write.
func appendFrameV2(dst []byte, id uint64, flags uint8, body []byte) []byte {
	var hdr [v2HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	binary.BigEndian.PutUint64(hdr[8:16], id)
	hdr[16] = flags
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// readFrameV2 reads one multiplexed frame.
func readFrameV2(r io.Reader) (id uint64, flags uint8, body []byte, err error) {
	var hdr [v2HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	want := binary.BigEndian.Uint32(hdr[4:8])
	id = binary.BigEndian.Uint64(hdr[8:16])
	flags = hdr[16]
	if length > maxFrameSize {
		return 0, 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", length)
	}
	body = make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, err
	}
	if crc32.Checksum(body, crcTable) != want {
		return 0, 0, nil, ErrFrameCorrupt
	}
	return id, flags, body, nil
}

// --- Version negotiation ---
//
// The hello and its ack travel as legacy frames whose body starts with the
// reserved kind byte 0 — no real protocol message begins with it, so a
// legacy server answers the hello with a decode ErrorResponse (telling the
// client to stay on v1) and a v2 server can distinguish a hello from a
// legacy client's first request.

var (
	helloPrefix = []byte{0, 'S', 'S', 'X', 'P'}
	ackPrefix   = []byte{0, 'S', 'S', 'X', 'A'}
)

// helloBody builds the client hello advertising its maximum version,
// followed by the session's tenant id (arbitrary trailing bytes, possibly
// empty). Servers predating tenant ids required an exact-length hello, so
// a tenant-bearing hello falls back to v1 against them — a harmless
// degradation (v1 still serves every request) that disappears once both
// ends upgrade.
func helloBody(maxVersion uint8, tenant string) []byte {
	b := append(append([]byte(nil), helloPrefix...), maxVersion)
	return append(b, tenant...)
}

// ackBody builds the server ack selecting the version to speak.
func ackBody(version uint8) []byte {
	return append(append([]byte(nil), ackPrefix...), version)
}

// parseNegotiation matches body against the given prefix and returns the
// version byte plus any trailing payload (the tenant id on hellos; empty
// on acks and old-client hellos).
func parseNegotiation(body, prefix []byte) (version uint8, rest []byte, ok bool) {
	if len(body) < len(prefix)+1 {
		return 0, nil, false
	}
	for i, b := range prefix {
		if body[i] != b {
			return 0, nil, false
		}
	}
	return body[len(prefix)], body[len(prefix)+1:], true
}

// --- In-process loopback ---

type localConn struct {
	counters
	mu      sync.Mutex
	handler Handler
	closed  bool
}

// NewLocal returns a Conn that delivers requests to h in-process, running
// the full encode/decode path in both directions so byte accounting matches
// a network deployment exactly.
func NewLocal(h Handler) Conn {
	return &localConn{handler: h}
}

func (c *localConn) Call(req proto.Message) (proto.Message, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	reqBody := proto.Encode(req)
	c.sent.Add(frameLen(reqBody))
	c.calls.Add(1)
	// Decode on the "server side" to guarantee the handler sees exactly
	// what a remote server would.
	serverReq, err := proto.Decode(reqBody)
	if err != nil {
		return nil, err
	}
	resp := c.handler.Handle(serverReq)
	respBody := proto.Encode(resp)
	c.recv.Add(frameLen(respBody))
	return proto.Decode(respBody)
}

// CallStream implements StreamCaller: when the handler streams, each batch
// is round-tripped through the codec (and counted as one v2 chunk frame)
// before reaching yield, so loopback byte accounting and aliasing behavior
// match the TCP transport.
func (c *localConn) CallStream(req proto.Message, yield func(*proto.RowsResponse) error) error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	reqBody := proto.Encode(req)
	c.sent.Add(frameLenV2(reqBody))
	c.calls.Add(1)
	serverReq, err := proto.Decode(reqBody)
	if err != nil {
		return err
	}
	if sh, ok := c.handler.(StreamHandler); ok {
		handled, err := sh.HandleStream(serverReq, func(chunk *proto.RowsResponse) error {
			body := proto.Encode(chunk)
			c.recv.Add(frameLenV2(body))
			msg, err := proto.Decode(body)
			if err != nil {
				return err
			}
			rr, ok := msg.(*proto.RowsResponse)
			if !ok {
				return fmt.Errorf("transport: chunk decoded as %T", msg)
			}
			return yield(rr)
		})
		if handled {
			var re *proto.RemoteError
			if errors.As(err, &re) {
				return re
			}
			return err
		}
	}
	// No streaming form: one buffered round trip.
	resp := c.handler.Handle(serverReq)
	respBody := proto.Encode(resp)
	c.recv.Add(frameLen(respBody))
	msg, err := proto.Decode(respBody)
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case *proto.RowsResponse:
		return yield(m)
	case *proto.ErrorResponse:
		return m.Err()
	default:
		return fmt.Errorf("transport: unexpected %T in row stream", msg)
	}
}

// CallDeadline implements DeadlineCaller for the loopback: the handler
// runs synchronously in-process and cannot be preempted, so the bound is
// an up-front fast-fail once the deadline has passed.
func (c *localConn) CallDeadline(req proto.Message, deadline time.Time) (proto.Message, error) {
	if !deadline.IsZero() && time.Until(deadline) <= 0 {
		return nil, os.ErrDeadlineExceeded
	}
	return c.Call(req)
}

// CallStreamDeadline implements StreamDeadlineCaller: the deadline is
// checked before every chunk delivery, so a loopback stream observes it at
// batch granularity (matching where a real server checks it).
func (c *localConn) CallStreamDeadline(req proto.Message, deadline time.Time, yield func(*proto.RowsResponse) error) error {
	if deadline.IsZero() {
		return c.CallStream(req, yield)
	}
	if time.Until(deadline) <= 0 {
		return os.ErrDeadlineExceeded
	}
	return c.CallStream(req, func(chunk *proto.RowsResponse) error {
		if time.Until(deadline) <= 0 {
			return os.ErrDeadlineExceeded
		}
		return yield(chunk)
	})
}

func (c *localConn) Stats() Stats { return c.snapshot() }

func (c *localConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}
