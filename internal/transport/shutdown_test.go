package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sssdb/internal/proto"
)

// TestDrainShedsQueuedItems is the scheduler-level gate for fast shutdown:
// drain must fast-fail everything still queued through its shed callback
// instead of running it, without waiting on the executing item.
func TestDrainShedsQueuedItems(t *testing.T) {
	s, release := gateScheduler(t, 1024, nil)
	const queued = 10
	var ran, shedded atomic.Int32
	for i := 0; i < queued; i++ {
		ok := s.submit("a", &schedItem{
			enq:  time.Now(),
			run:  func() { ran.Add(1) },
			shed: func() { shedded.Add(1) },
		})
		if !ok {
			t.Fatalf("submission %d shed before drain", i)
		}
	}
	start := time.Now()
	s.drain() // the gate item is still executing: drain must not wait for it
	if d := time.Since(start); d > time.Second {
		t.Fatalf("drain blocked %v behind an executing item", d)
	}
	if got := shedded.Load(); got != queued {
		t.Fatalf("drain shed %d of %d queued items", got, queued)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("drain ran %d items it should have shed", got)
	}
	if st := s.stats(); st.QueueDepth != 0 || st.Shed != queued {
		t.Fatalf("post-drain stats: depth=%d shed=%d, want 0 and %d", st.QueueDepth, st.Shed, queued)
	}
	// New submissions are refused while draining.
	if s.submit("a", &schedItem{enq: time.Now(), run: func() { ran.Add(1) }}) {
		t.Fatal("submission admitted during drain")
	}
	release()
	if !s.waitIdle(5 * time.Second) {
		t.Fatal("scheduler never went idle after release")
	}
}

// TestShutdownShedsDeepQueue drives the same property end to end: with a
// single-slot inflight budget held by a slow handler and a deep backlog of
// queued scans, Shutdown must answer every queued caller with CodeServerBusy
// immediately — bounded by the one executing handler, not the queue depth.
// Before drain shed queued work, each of these callers sat unanswered until
// the full drain timeout burned down.
func TestShutdownShedsDeepQueue(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	defer h.once.Do(func() { close(h.release) })
	srv := newTestServer(t, h, ServerConfig{MaxInflight: 1, MaxQueue: 64})
	c, err := DialWith(srv.Addr().String(), DialConfig{BusyRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Occupy the only worker slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Call(&proto.ScanRequest{Table: "gate"})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for h.started.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gate scan never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Stage a backlog behind it.
	const backlog = 10
	type reply struct {
		resp proto.Message
		err  error
	}
	replies := make(chan reply, backlog)
	for i := 0; i < backlog; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Call(&proto.ScanRequest{Table: "queued"})
			replies <- reply{resp, err}
		}()
	}
	waitDeadline := time.Now().Add(5 * time.Second)
	for srv.sched.stats().QueueDepth < backlog {
		if time.Now().After(waitDeadline) {
			t.Fatalf("backlog never queued: depth %d", srv.sched.stats().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}

	// Shutdown with a generous drain timeout. The queued callers must be
	// answered busy long before that timeout; only then is the gate
	// released so Shutdown itself can finish.
	done := make(chan bool, 1)
	go func() { done <- srv.Shutdown(30 * time.Second) }()
	start := time.Now()
	for i := 0; i < backlog; i++ {
		select {
		case r := <-replies:
			busy := IsBusy(r.err)
			if er, ok := r.resp.(*proto.ErrorResponse); ok && er.Code == proto.CodeServerBusy {
				busy = true
			}
			if !busy {
				t.Errorf("queued caller got %v / %v, want server-busy", r.resp, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("queued caller %d still unanswered %v after Shutdown (drain did not shed)", i, time.Since(start))
		}
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("shedding the queue took %v, want well under the drain timeout", d)
	}
	h.once.Do(func() { close(h.release) })
	select {
	case drained := <-done:
		if !drained {
			t.Error("Shutdown reported an unfinished drain")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned after the gate released")
	}
	wg.Wait()
}
