package transport

import (
	"errors"
	"testing"
	"time"

	"sssdb/internal/proto"
)

// chunkedHandler streams a fixed number of single-row chunks.
type chunkedHandler struct {
	chunks int
}

func (h *chunkedHandler) Handle(req proto.Message) proto.Message {
	return &proto.ErrorResponse{Code: proto.CodeBadRequest, Msg: "stream only"}
}

func (h *chunkedHandler) HandleStream(req proto.Message, emit func(*proto.RowsResponse) error) (bool, error) {
	for i := 0; i < h.chunks; i++ {
		chunk := &proto.RowsResponse{Columns: []string{"c"}, Rows: []proto.Row{{ID: uint64(i + 1)}}}
		if err := emit(chunk); err != nil {
			return true, err
		}
	}
	return true, nil
}

func TestFaultyCrashAfterChunks(t *testing.T) {
	f := NewFaulty(NewLocal(&chunkedHandler{chunks: 5}))
	defer f.Close()
	f.CrashAfterChunks(2)
	var got int
	err := f.CallStream(&proto.ScanRequest{Table: "t"}, func(*proto.RowsResponse) error {
		got++
		return nil
	})
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("stream error = %v, want ErrInjectedCrash", err)
	}
	if got != 2 {
		t.Fatalf("delivered %d chunks before the crash, want 2", got)
	}
	// The trigger leaves the connection in full crash mode…
	if _, err := f.Call(&proto.PingRequest{}); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("post-crash call error = %v, want ErrInjectedCrash", err)
	}
	// …until Recover clears it, after which streams flow whole again.
	f.Recover()
	got = 0
	if err := f.CallStream(&proto.ScanRequest{Table: "t"}, func(*proto.RowsResponse) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("recovered stream delivered %d chunks, want 5", got)
	}
}

func TestFaultyCrashAfterZeroChunks(t *testing.T) {
	f := NewFaulty(NewLocal(&chunkedHandler{chunks: 3}))
	defer f.Close()
	f.CrashAfterChunks(0)
	var got int
	err := f.CallStream(&proto.ScanRequest{Table: "t"}, func(*proto.RowsResponse) error {
		got++
		return nil
	})
	if !errors.Is(err, ErrInjectedCrash) || got != 0 {
		t.Fatalf("err = %v with %d chunks, want ErrInjectedCrash before any chunk", err, got)
	}
}

func TestFaultyDelayInterruptedByCrash(t *testing.T) {
	f := NewFaulty(NewLocal(&echoHandler{}))
	defer f.Close()
	f.SetDelay(time.Minute)
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := f.Call(&proto.PingRequest{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	f.Crash()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjectedCrash) {
			t.Fatalf("got %v, want ErrInjectedCrash", err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("delayed call took %v to abort", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("delayed call did not abort on Crash")
	}
}

func TestFaultyStreamDelayInterruptedByClose(t *testing.T) {
	f := NewFaulty(NewLocal(&chunkedHandler{chunks: 3}))
	f.SetDelay(time.Minute)
	done := make(chan error, 1)
	go func() {
		done <- f.CallStream(&proto.ScanRequest{Table: "t"}, func(*proto.RowsResponse) error { return nil })
	}()
	time.Sleep(20 * time.Millisecond)
	f.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("delayed stream did not abort on Close")
	}
}

func TestFaultyDelayRearmsAfterRecover(t *testing.T) {
	f := NewFaulty(NewLocal(&echoHandler{}))
	defer f.Close()
	f.Crash()
	f.Recover()
	// The crash burned the wake channel; Recover must re-arm it so a
	// delayed call parks (and completes) instead of aborting instantly.
	f.SetDelay(30 * time.Millisecond)
	start := time.Now()
	if _, err := f.Call(&proto.PingRequest{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delay skipped after Recover: %v", elapsed)
	}
}
