package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sssdb/internal/hist"
	"sssdb/internal/proto"
)

// ErrServerBusy is the client-visible form of an admission rejection: the
// server shed the request before executing it, so retrying after a backoff
// is always safe. On the wire it travels as an ErrorResponse with
// CodeServerBusy; IsBusy matches both forms.
var ErrServerBusy = errors.New("transport: server busy")

// IsBusy reports whether err is an admission-control rejection (local
// sentinel or remote CodeServerBusy error).
func IsBusy(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrServerBusy) {
		return true
	}
	var re *proto.RemoteError
	return errors.As(err, &re) && re.Code == proto.CodeServerBusy
}

// busyResponse is the fast-fail shed reply.
func busyResponse() *proto.ErrorResponse {
	return &proto.ErrorResponse{Code: proto.CodeServerBusy, Msg: "admission queue full; retry with backoff"}
}

// schedQuantum is the DWRR quantum: how many requests one weight unit is
// worth per scheduler visit. Small enough that a heavy tenant cannot burst
// far past its share, large enough that the ring does not thrash.
const schedQuantum = 4

// schedItem is one admitted-or-shed unit of work: a decoded request bound
// to its connection's response queue.
type schedItem struct {
	enq time.Time
	run func()
	// shed, when non-nil, replies busy without executing; drain uses it to
	// fast-fail work that was queued but never admitted. Falls back to run
	// when unset.
	shed func()
}

// tenantQ is one tenant's FIFO of pending requests plus its DWRR state.
// A tenant is "active" (in the ring) exactly while its queue is non-empty;
// going idle forfeits any accumulated deficit, so a tenant cannot bank
// credit while idle and then burst past its share.
type tenantQ struct {
	name    string
	weight  int
	q       []*schedItem
	deficit int
	inRing  bool
}

// scheduler is the server-wide admission controller: a global budget of
// concurrently-executing handlers fed from per-tenant FIFO queues drained
// in deficit-weighted round-robin order. Connections submit work keyed by
// the tenant they authenticated in the hello, so a tenant opening more
// connections gets more queue slots consumed, not more service share.
// Queues are bounded; submit fast-fails (shed) instead of queueing without
// limit, which is what keeps admitted-request latency bounded under
// overload.
type scheduler struct {
	budget   int // worker count = max concurrently-executing handlers
	maxQueue int // per-tenant pending bound
	weights  map[string]int

	mu        sync.Mutex
	cond      *sync.Cond
	tenants   map[string]*tenantQ
	ring      []*tenantQ // active tenants, round-robin order
	ringPos   int
	queued    int // total items across tenant queues
	executing int
	closed    bool
	draining  bool
	workers   sync.WaitGroup

	admitted   atomic.Uint64
	shed       atomic.Uint64
	admitHist  hist.Hist
	handleHist hist.Hist
}

func newScheduler(budget, maxQueue int, weights map[string]int) *scheduler {
	s := &scheduler{
		budget:   budget,
		maxQueue: maxQueue,
		weights:  weights,
		tenants:  make(map[string]*tenantQ),
	}
	s.cond = sync.NewCond(&s.mu)
	s.workers.Add(budget)
	for i := 0; i < budget; i++ {
		go s.worker()
	}
	return s
}

// submit enqueues one item for tenant, reporting false (shed) when the
// tenant's queue is full or the scheduler is draining/closed. The caller
// owns replying with busyResponse on false.
func (s *scheduler) submit(tenant string, it *schedItem) bool {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		s.shed.Add(1)
		return false
	}
	t := s.tenants[tenant]
	if t == nil {
		w := s.weights[tenant]
		if w <= 0 {
			w = 1
		}
		t = &tenantQ{name: tenant, weight: w}
		s.tenants[tenant] = t
	}
	if len(t.q) >= s.maxQueue {
		s.mu.Unlock()
		s.shed.Add(1)
		return false
	}
	t.q = append(t.q, it)
	if !t.inRing {
		t.inRing = true
		s.ring = append(s.ring, t)
	}
	s.queued++
	s.cond.Signal()
	s.mu.Unlock()
	return true
}

// next blocks until an item is admitted (nil once the scheduler is closed
// and fully drained). Tenant selection is deficit round-robin: entering a
// tenant tops its deficit up by weight×quantum, each admitted request costs
// one, and the ring advances when the deficit is spent. A tenant whose
// queue empties leaves the ring and forfeits its remaining deficit.
func (s *scheduler) next() *schedItem {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.ring) == 0 {
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
	if s.ringPos >= len(s.ring) {
		s.ringPos = 0
	}
	t := s.ring[s.ringPos]
	if t.deficit <= 0 {
		t.deficit = t.weight * schedQuantum
	}
	it := t.q[0]
	t.q[0] = nil
	t.q = t.q[1:]
	t.deficit--
	s.queued--
	if len(t.q) == 0 {
		t.q = nil
		t.deficit = 0
		t.inRing = false
		s.ring = append(s.ring[:s.ringPos], s.ring[s.ringPos+1:]...)
		// ringPos already points at the successor after the removal.
	} else if t.deficit <= 0 {
		s.ringPos++
	}
	s.executing++
	return it
}

// worker is one slot of the global inflight budget.
func (s *scheduler) worker() {
	defer s.workers.Done()
	for {
		it := s.next()
		if it == nil {
			return
		}
		s.admitHist.Observe(time.Since(it.enq))
		s.admitted.Add(1)
		start := time.Now()
		it.run()
		s.handleHist.Observe(time.Since(start))
		s.mu.Lock()
		s.executing--
		s.mu.Unlock()
	}
}

// drain stops admitting new work (submissions shed) AND sheds everything
// still queued: only requests a worker has already admitted run to
// completion. Shutdown latency is therefore bounded by the in-flight
// handlers, not by the queue depth — before this, a deep queue (say, a
// tenant's backlog of streaming scans behind a slow handler) pinned
// Shutdown against its full drain timeout while callers sat unanswered.
// Shed callers get the same fast-fail busy reply submit would have sent.
func (s *scheduler) drain() {
	s.mu.Lock()
	s.draining = true
	var dropped []*schedItem
	for _, t := range s.tenants {
		for _, it := range t.q {
			dropped = append(dropped, it)
		}
		t.q = nil
		t.deficit = 0
		t.inRing = false
	}
	s.ring = nil
	s.ringPos = 0
	s.queued = 0
	s.mu.Unlock()
	// Reply outside the lock: shed closures write to connection queues.
	for _, it := range dropped {
		s.shed.Add(1)
		if it.shed != nil {
			it.shed()
		} else {
			it.run()
		}
	}
}

// waitIdle blocks until no work is queued or executing, or the timeout
// elapses; it reports whether the scheduler went idle.
func (s *scheduler) waitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		idle := s.queued == 0 && s.executing == 0
		s.mu.Unlock()
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// close stops the workers once every queued item has run. Safe to call
// more than once.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.workers.Wait()
}

// SchedStats is a snapshot of the admission scheduler, exposed for tests,
// tooling, and the stats-on-ping path.
type SchedStats struct {
	QueueDepth   int
	QueueTenants int
	Executing    int
	Admitted     uint64
	Shed         uint64
	AdmitWaitP50 time.Duration
	AdmitWaitP99 time.Duration
	HandleP50    time.Duration
	HandleP99    time.Duration
	HandleP999   time.Duration
}

func (s *scheduler) stats() SchedStats {
	s.mu.Lock()
	st := SchedStats{
		QueueDepth:   s.queued,
		QueueTenants: len(s.ring),
		Executing:    s.executing,
	}
	s.mu.Unlock()
	st.Admitted = s.admitted.Load()
	st.Shed = s.shed.Load()
	st.AdmitWaitP50 = s.admitHist.Quantile(0.50)
	st.AdmitWaitP99 = s.admitHist.Quantile(0.99)
	st.HandleP50 = s.handleHist.Quantile(0.50)
	st.HandleP99 = s.handleHist.Quantile(0.99)
	st.HandleP999 = s.handleHist.Quantile(0.999)
	return st
}

// fillStats attaches the serving-path counters to a stats reply riding a
// ping, so the client's repair loop sees queue pressure next to the cache
// and checkpoint numbers it already records.
func (s *scheduler) fillStats(m *proto.StatsResponse) {
	st := s.stats()
	m.QueueDepth = uint64(st.QueueDepth)
	m.QueueTenants = uint64(st.QueueTenants)
	m.Admitted = st.Admitted
	m.Shed = st.Shed
	m.AdmitWaitP50 = uint64(st.AdmitWaitP50)
	m.AdmitWaitP99 = uint64(st.AdmitWaitP99)
	m.HandleP50 = uint64(st.HandleP50)
	m.HandleP99 = uint64(st.HandleP99)
	m.HandleP999 = uint64(st.HandleP999)
}
