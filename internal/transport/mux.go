package transport

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sssdb/internal/proto"
)

// Dial/redial tuning.
const (
	defaultDialTimeout = 30 * time.Second
	defaultMaxRedials  = 2
	redialBackoffBase  = 25 * time.Millisecond
	redialBackoffCap   = 500 * time.Millisecond
	// consecTimeoutLimit is how many consecutive per-request timeouts a
	// multiplexed session survives before it is declared wedged and torn
	// down so the next call redials.
	consecTimeoutLimit = 3
	// streamWindow bounds chunks buffered per streaming call before the
	// reader backpressures the connection.
	streamWindow = 4
	connBufSize  = 64 << 10
	// Busy-retry tuning: a CodeServerBusy rejection was shed before
	// executing, so retrying is always safe; exponential backoff keeps
	// retries from re-contributing to the overload that shed them.
	defaultBusyRetries = 4
	busyBackoffBase    = 2 * time.Millisecond
	busyBackoffCap     = 100 * time.Millisecond
)

// DialConfig tunes a TCP provider connection.
type DialConfig struct {
	// Timeout is the per-call deadline: a Call (including the whole chunk
	// stream of its response) that does not complete within Timeout fails
	// with a net.Error whose Timeout() is true. Zero disables deadlines.
	Timeout time.Duration
	// DisableMultiplex forces the legacy one-in-flight-per-connection
	// protocol (v1). Used by benchmarks and old-server interop tests.
	DisableMultiplex bool
	// MaxRedials caps automatic reconnect attempts per call after the
	// connection dies. 0 means the default (2); negative disables
	// reconnecting entirely.
	MaxRedials int
	// Tenant names the workload this session belongs to for the server's
	// admission scheduler: all connections announcing the same tenant share
	// one fair-scheduling queue, however many there are. Empty joins the
	// anonymous tenant.
	Tenant string
	// BusyRetries caps transparent retries (with exponential backoff) of
	// calls the server shed with CodeServerBusy. Shed requests never
	// executed, so the retry is safe even for writes. 0 means the default
	// (4); negative disables retrying, surfacing the busy error to the
	// caller.
	BusyRetries int
}

// Dial connects to a provider at addr (host:port).
func Dial(addr string) (Conn, error) {
	return DialWith(addr, DialConfig{})
}

// DialTimeout connects with a per-call deadline: any Call that does not
// complete within timeout fails (and the caller's failover logic treats the
// provider as down). Zero disables deadlines.
func DialTimeout(addr string, timeout time.Duration) (Conn, error) {
	return DialWith(addr, DialConfig{Timeout: timeout})
}

// DialWith connects to a provider with explicit transport configuration.
// The TCP connection is established eagerly; protocol version negotiation
// happens lazily on the first call (under that call's deadline), so a
// silent peer surfaces as a call timeout, not a dial failure.
func DialWith(addr string, cfg DialConfig) (Conn, error) {
	switch {
	case cfg.MaxRedials == 0:
		cfg.MaxRedials = defaultMaxRedials
	case cfg.MaxRedials < 0:
		cfg.MaxRedials = 0
	}
	switch {
	case cfg.BusyRetries == 0:
		cfg.BusyRetries = defaultBusyRetries
	case cfg.BusyRetries < 0:
		cfg.BusyRetries = 0
	}
	c := &tcpConn{addr: addr, cfg: cfg, closeCh: make(chan struct{})}
	s, err := c.dialSession()
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c.sess = s
	return c, nil
}

// tcpConn is a provider connection over TCP. It owns at most one live
// session at a time and transparently redials (capped) when the session
// dies, so one failed call no longer strands the provider until restart.
type tcpConn struct {
	counters
	addr string
	cfg  DialConfig

	// closeCh is closed by Close so backoff waits (busy-retry, redial)
	// abort immediately instead of sleeping out their full delay.
	closeCh chan struct{}

	mu     sync.Mutex // guards sess and closed
	sess   *session
	closed bool
}

// session is one established TCP connection. Multiplexed (v2) sessions
// share the wire between any number of in-flight calls: writers serialize
// frame writes through sendMu, and a single reader goroutine demultiplexes
// response frames into the pending map by request id.
type session struct {
	nc    net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	stats *counters

	// version is 0 until negotiated, then protoVersionLegacy or
	// protoVersionMux.
	version atomic.Int32

	// sendMu serializes frame writes (and, on legacy sessions, whole
	// calls). On multiplexed sessions it guards wbuf/wspare/flushing: the
	// double-buffered group-commit write path of writeRequest.
	sendMu   sync.Mutex
	wbuf     []byte
	wspare   []byte
	flushing bool

	nextID atomic.Uint64

	// mu guards pending, dead, and failErr.
	mu      sync.Mutex
	pending map[uint64]*pendingCall
	dead    bool
	failErr error

	// consecTimeouts counts per-request timeouts with no intervening
	// delivered response; crossing consecTimeoutLimit declares the
	// session wedged.
	consecTimeouts atomic.Int32
}

type callResult struct {
	msg proto.Message
	err error
}

// pendingCall is one in-flight request awaiting its response frames.
type pendingCall struct {
	// done receives the final result exactly once (buffered).
	done chan callResult
	// stream, when non-nil, receives row chunks for CallStream calls.
	stream chan *proto.RowsResponse
	// gone is closed when the caller abandons a streaming call (timeout or
	// chunk error) so the reader never blocks on a dead consumer. Plain
	// calls leave it nil: the reader only ever sends to the buffered done
	// channel, which cannot block.
	gone chan struct{}
	// partial accumulates chunked rows for plain Call; reader-owned.
	partial *proto.RowsResponse
}

func (c *tcpConn) dialSession() (*session, error) {
	dialTimeout := c.cfg.Timeout
	if dialTimeout == 0 {
		dialTimeout = defaultDialTimeout
	}
	nc, err := net.DialTimeout("tcp", c.addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	s := &session{
		nc:      nc,
		br:      bufio.NewReaderSize(nc, connBufSize),
		bw:      bufio.NewWriterSize(nc, connBufSize),
		stats:   &c.counters,
		pending: make(map[uint64]*pendingCall),
	}
	if c.cfg.DisableMultiplex {
		s.version.Store(protoVersionLegacy)
	}
	return s, nil
}

// session returns the live session, redialing if the previous one died.
func (c *tcpConn) session() (*session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.sess != nil && !c.sess.isDead() {
		return c.sess, nil
	}
	s, err := c.dialSession()
	if err != nil {
		return nil, err
	}
	c.sess = s
	return s, nil
}

func (s *session) isDead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// fail declares the session dead: it closes the socket (unblocking any
// reader or writer), and completes every pending call with err. Idempotent.
func (s *session) fail(err error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	s.dead = true
	s.failErr = err
	pending := s.pending
	s.pending = make(map[uint64]*pendingCall)
	s.mu.Unlock()
	s.nc.Close()
	for _, pc := range pending {
		pc.done <- callResult{err: err}
	}
}

func (s *session) deathErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failErr != nil {
		return s.failErr
	}
	return ErrClosed
}

// abandon drops a pending call the caller no longer waits for.
func (s *session) abandon(id uint64) {
	s.mu.Lock()
	pc, ok := s.pending[id]
	if ok {
		delete(s.pending, id)
	}
	s.mu.Unlock()
	if ok && pc.gone != nil {
		close(pc.gone)
	}
}

// negotiate performs the hello/ack exchange once per session and returns
// the agreed protocol version. Concurrent first calls serialize on sendMu;
// losers observe the winner's result. timeout is the caller's per-attempt
// budget (its Timeout tightened by any call deadline), so a silent peer
// cannot hold negotiation longer than the call it serves.
func (c *tcpConn) negotiate(s *session, timeout time.Duration) (int32, error) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if v := s.version.Load(); v != 0 {
		return v, nil
	}
	if s.isDead() {
		return 0, s.deathErr()
	}
	if timeout > 0 {
		if err := s.nc.SetDeadline(time.Now().Add(timeout)); err != nil {
			return 0, err
		}
	}
	hello := helloBody(protoVersionMux, c.cfg.Tenant)
	if err := writeFrame(s.bw, hello); err != nil {
		return 0, err
	}
	if err := s.bw.Flush(); err != nil {
		return 0, err
	}
	s.stats.sent.Add(frameLen(hello))
	ack, err := readFrame(s.br)
	if err != nil {
		return 0, err
	}
	s.stats.recv.Add(frameLen(ack))
	if timeout > 0 {
		// Multiplexed sessions use per-request timers, not socket
		// deadlines; legacy sessions re-arm the deadline per call.
		if err := s.nc.SetDeadline(time.Time{}); err != nil {
			return 0, err
		}
	}
	if v, _, ok := parseNegotiation(ack, ackPrefix); ok && v >= protoVersionMux {
		s.version.Store(protoVersionMux)
		go s.readLoop()
		return protoVersionMux, nil
	}
	// A legacy server answers the hello with a decode error; any valid
	// ErrorResponse body means "v1 spoken here".
	if msg, derr := proto.Decode(ack); derr == nil {
		if _, isErr := msg.(*proto.ErrorResponse); isErr {
			s.version.Store(protoVersionLegacy)
			return protoVersionLegacy, nil
		}
	}
	return 0, fmt.Errorf("transport: unexpected negotiation response from %s", c.addr)
}

// Call implements Conn.
func (c *tcpConn) Call(req proto.Message) (proto.Message, error) {
	return c.do(req, nil, time.Time{})
}

// CallDeadline implements DeadlineCaller: the call (including redial and
// busy-retry backoff waits) is bounded by the absolute deadline, which
// tightens the per-call Timeout when it is nearer.
func (c *tcpConn) CallDeadline(req proto.Message, deadline time.Time) (proto.Message, error) {
	return c.do(req, nil, deadline)
}

// CallStream implements StreamCaller.
func (c *tcpConn) CallStream(req proto.Message, yield func(*proto.RowsResponse) error) error {
	return c.callStream(req, yield, time.Time{})
}

// CallStreamDeadline implements StreamDeadlineCaller; the deadline covers
// the whole chunk stream.
func (c *tcpConn) CallStreamDeadline(req proto.Message, deadline time.Time, yield func(*proto.RowsResponse) error) error {
	return c.callStream(req, yield, deadline)
}

func (c *tcpConn) callStream(req proto.Message, yield func(*proto.RowsResponse) error, deadline time.Time) error {
	resp, err := c.do(req, yield, deadline)
	if err != nil {
		return err
	}
	switch m := resp.(type) {
	case nil:
		return nil // chunks were already delivered through yield
	case *proto.RowsResponse:
		return yield(m)
	case *proto.ErrorResponse:
		return m.Err()
	default:
		return fmt.Errorf("transport: unexpected %T in row stream", resp)
	}
}

// do runs one call with transparent busy-retries: a response the server
// shed with CodeServerBusy (admission queue full — the request never
// executed, so replaying is safe even for writes) is retried up to
// BusyRetries times behind exponential backoff. Anything else passes
// straight through.
func (c *tcpConn) do(req proto.Message, yield func(*proto.RowsResponse) error, deadline time.Time) (proto.Message, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.doOnce(req, yield, deadline)
		busy := IsBusy(err)
		if er, ok := resp.(*proto.ErrorResponse); ok && er.Code == proto.CodeServerBusy {
			busy = true
		}
		if !busy || attempt >= c.cfg.BusyRetries {
			return resp, err
		}
		if err := c.waitBackoff(busyBackoff(attempt), deadline); err != nil {
			return nil, err
		}
	}
}

// waitBackoff parks for d, aborting early when the connection closes or
// the call deadline would elapse before the wait ends. Backoff must never
// outlive the caller's interest: a closing client or an expired deadline
// gets an immediate error, not a slept-out cap.
func (c *tcpConn) waitBackoff(d time.Duration, deadline time.Time) error {
	if !deadline.IsZero() && time.Until(deadline) <= d {
		return os.ErrDeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closeCh:
		return ErrClosed
	}
}

// busyBackoff is the wait before busy-retry attempt+1: exponential from
// busyBackoffBase, capped.
func busyBackoff(attempt int) time.Duration {
	d := busyBackoffBase << attempt
	if d > busyBackoffCap || d <= 0 {
		return busyBackoffCap
	}
	return d
}

// doOnce runs one call, redialing a dead session up to MaxRedials times as
// long as the request has not touched the wire (a request that may have
// reached the provider is never replayed — the caller's failover logic
// owns that decision).
func (c *tcpConn) doOnce(req proto.Message, yield func(*proto.RowsResponse) error, deadline time.Time) (proto.Message, error) {
	body := proto.Encode(req)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRedials; attempt++ {
		if attempt > 0 {
			if err := c.waitBackoff(redialBackoff(attempt), deadline); err != nil {
				if lastErr != nil && err == os.ErrDeadlineExceeded {
					return nil, fmt.Errorf("%w (last redial error: %v)", err, lastErr)
				}
				return nil, err
			}
		}
		// Per-attempt timeout: the connection's configured Timeout, tightened
		// by whatever remains until the caller's absolute deadline.
		timeout := c.cfg.Timeout
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				return nil, os.ErrDeadlineExceeded
			}
			if timeout == 0 || rem < timeout {
				timeout = rem
			}
		}
		s, err := c.session()
		if err != nil {
			if err == ErrClosed {
				return nil, err
			}
			lastErr = err
			continue
		}
		ver := s.version.Load()
		if ver == 0 {
			ver, err = c.negotiate(s, timeout)
			if err != nil {
				s.fail(err)
				lastErr = err
				continue
			}
		}
		var resp proto.Message
		var wrote bool
		if ver == protoVersionLegacy {
			resp, wrote, err = c.legacyCall(s, body, timeout)
		} else {
			// A timer fired because of the caller's deadline says nothing
			// about session health, so only Timeout-sized waits count toward
			// wedge detection.
			countWedge := timeout == c.cfg.Timeout
			resp, wrote, err = c.muxCall(s, body, yield, timeout, countWedge)
		}
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if wrote {
			return nil, err
		}
	}
	return nil, lastErr
}

func redialBackoff(attempt int) time.Duration {
	d := redialBackoffBase << (attempt - 1)
	if d > redialBackoffCap {
		return redialBackoffCap
	}
	return d
}

// legacyCall is the v1 path: the whole write→read round trip holds sendMu.
func (c *tcpConn) legacyCall(s *session, body []byte, timeout time.Duration) (resp proto.Message, wrote bool, err error) {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.isDead() {
		return nil, false, s.deathErr()
	}
	if timeout > 0 {
		if err := s.nc.SetDeadline(time.Now().Add(timeout)); err != nil {
			s.fail(err)
			return nil, false, err
		}
	}
	if err := writeFrame(s.bw, body); err != nil {
		s.fail(err)
		return nil, true, err
	}
	if err := s.bw.Flush(); err != nil {
		s.fail(err)
		return nil, true, err
	}
	c.sent.Add(frameLen(body))
	c.calls.Add(1)
	respBody, err := readFrame(s.br)
	if err != nil {
		s.fail(err)
		return nil, true, err
	}
	c.recv.Add(frameLen(respBody))
	msg, err := proto.Decode(respBody)
	if err != nil {
		s.fail(err)
		return nil, true, err
	}
	return msg, true, nil
}

// muxCall is the v2 path: register a pending entry, write one request
// frame, and wait for the reader goroutine to deliver the response (or the
// per-request timer to fire).
func (c *tcpConn) muxCall(s *session, body []byte, yield func(*proto.RowsResponse) error, timeout time.Duration, countWedge bool) (resp proto.Message, wrote bool, err error) {
	id := s.nextID.Add(1)
	pc := &pendingCall{done: make(chan callResult, 1)}
	if yield != nil {
		pc.stream = make(chan *proto.RowsResponse, streamWindow)
		pc.gone = make(chan struct{})
	}
	s.mu.Lock()
	if s.dead {
		err := s.failErr
		s.mu.Unlock()
		return nil, false, err
	}
	s.pending[id] = pc
	s.mu.Unlock()

	if err := s.writeRequest(id, flagFinal, body); err != nil {
		s.fail(err)
		s.abandon(id)
		return nil, true, err
	}
	c.sent.Add(frameLenV2(body))
	c.calls.Add(1)

	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	for {
		select {
		case chunk := <-pc.stream:
			s.consecTimeouts.Store(0)
			if err := yield(chunk); err != nil {
				s.abandon(id)
				s.sendCancel(id)
				return nil, true, err
			}
		case r := <-pc.done:
			if r.err != nil {
				return nil, true, r.err
			}
			s.consecTimeouts.Store(0)
			// done is signalled after the last chunk is buffered, so any
			// chunks still sitting in the stream channel must be yielded
			// before the call completes.
			for pc.stream != nil {
				select {
				case chunk := <-pc.stream:
					if err := yield(chunk); err != nil {
						return nil, true, err
					}
				default:
					return r.msg, true, nil
				}
			}
			return r.msg, true, nil
		case <-timeoutC:
			s.abandon(id)
			if pc.stream != nil {
				s.sendCancel(id)
			}
			if countWedge && s.consecTimeouts.Add(1) >= consecTimeoutLimit {
				// Nothing has come back across several deadlines: the
				// connection is wedged; tear it down so the next call
				// starts fresh.
				s.fail(os.ErrDeadlineExceeded)
			}
			return nil, true, os.ErrDeadlineExceeded
		}
	}
}

// writeRequest enqueues one request frame and ensures it reaches the
// socket. The first writer becomes the flusher and drains the pending
// buffer with direct socket writes; writers arriving while a write syscall
// is in flight append to the other buffer and return immediately — their
// bytes ride the flusher's next write. This group commit amortizes write
// syscalls across however many calls are concurrently in flight.
func (s *session) writeRequest(id uint64, flags uint8, body []byte) error {
	s.sendMu.Lock()
	if s.isDead() {
		s.sendMu.Unlock()
		return s.deathErr()
	}
	s.wbuf = appendFrameV2(s.wbuf, id, flags, body)
	if s.flushing {
		// The active flusher will pick these bytes up; if its write fails
		// it fails the session, which completes our pending call too.
		s.sendMu.Unlock()
		return nil
	}
	s.flushing = true
	var err error
	for err == nil && len(s.wbuf) > 0 {
		buf := s.wbuf
		s.wbuf = s.wspare[:0]
		s.sendMu.Unlock()
		_, err = s.nc.Write(buf)
		s.sendMu.Lock()
		s.wspare = buf[:0]
	}
	s.flushing = false
	if err != nil {
		s.wbuf = nil
		s.wspare = nil
	}
	s.sendMu.Unlock()
	if err != nil {
		s.fail(err)
		return err
	}
	return nil
}

// sendCancel asks the server to stop producing the response for an
// abandoned streaming call (LIMIT satisfied, deadline hit). Best-effort:
// if the write fails the session is torn down anyway, and if the server
// has already finished, the unknown id is ignored server-side while the
// demux drops whatever frames were in flight.
func (s *session) sendCancel(id uint64) {
	if s.writeRequest(id, flagCancel, nil) == nil {
		s.stats.sent.Add(frameLenV2(nil))
	}
}

// readLoop is the demux goroutine of a v2 session: it owns the read half
// of the socket, routes every response frame to its pending call, and on
// connection death cancels everything in flight.
func (s *session) readLoop() {
	for {
		id, flags, body, err := readFrameV2(s.br)
		if err != nil {
			s.fail(err)
			return
		}
		s.stats.recv.Add(frameLenV2(body))
		msg, err := proto.Decode(body)
		if err != nil {
			// Undecodable response: the stream is not trustworthy beyond
			// this point.
			s.fail(err)
			return
		}
		final := flags&flagFinal != 0
		s.mu.Lock()
		pc, ok := s.pending[id]
		if ok && final {
			delete(s.pending, id)
		}
		s.mu.Unlock()
		if !ok {
			continue // abandoned call; drop the late response
		}
		if flags&flagChunk != 0 {
			rr, isRows := msg.(*proto.RowsResponse)
			if !isRows {
				s.fail(fmt.Errorf("transport: chunk frame carries %T", msg))
				return
			}
			if pc.stream != nil {
				select {
				case pc.stream <- rr:
				case <-pc.gone:
					continue
				}
				if final {
					pc.done <- callResult{}
				}
				continue
			}
			pc.partial = proto.MergeRowsChunk(pc.partial, rr)
			if final {
				pc.done <- callResult{msg: pc.partial}
			}
			continue
		}
		if !final {
			s.fail(fmt.Errorf("transport: non-final %T frame without chunk flag", msg))
			return
		}
		if pc.stream != nil {
			// Small responses arrive unchunked even on streaming calls.
			if rr, isRows := msg.(*proto.RowsResponse); isRows {
				select {
				case pc.stream <- rr:
				case <-pc.gone:
					continue
				}
				pc.done <- callResult{}
				continue
			}
			pc.done <- callResult{msg: msg}
			continue
		}
		if pc.partial != nil {
			if rr, isRows := msg.(*proto.RowsResponse); isRows {
				msg = proto.MergeRowsChunk(pc.partial, rr)
			}
		}
		pc.done <- callResult{msg: msg}
	}
}

// Stats implements Conn.
func (c *tcpConn) Stats() Stats { return c.snapshot() }

// Close implements Conn.
func (c *tcpConn) Close() error {
	c.mu.Lock()
	s := c.sess
	c.sess = nil
	wasClosed := c.closed
	c.closed = true
	c.mu.Unlock()
	if !wasClosed {
		close(c.closeCh) // abort any backoff waits immediately
	}
	if s != nil {
		s.fail(ErrClosed)
	}
	return nil
}
