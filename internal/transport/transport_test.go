package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"sssdb/internal/proto"
)

// echoHandler responds to Ping with OK and echoes scan requests back as
// row responses carrying the table name, letting tests verify dispatch.
type echoHandler struct {
	mu    sync.Mutex
	calls int
}

func (h *echoHandler) Handle(req proto.Message) proto.Message {
	h.mu.Lock()
	h.calls++
	h.mu.Unlock()
	switch m := req.(type) {
	case *proto.PingRequest:
		return &proto.OKResponse{Affected: 7}
	case *proto.ScanRequest:
		return &proto.RowsResponse{Columns: []string{m.Table}}
	default:
		return &proto.ErrorResponse{Code: proto.CodeBadRequest, Msg: "unexpected"}
	}
}

func TestLocalConnRoundTrip(t *testing.T) {
	h := &echoHandler{}
	c := NewLocal(h)
	defer c.Close()
	resp, err := c.Call(&proto.PingRequest{})
	if err != nil {
		t.Fatal(err)
	}
	ok, isOK := resp.(*proto.OKResponse)
	if !isOK || ok.Affected != 7 {
		t.Fatalf("got %#v", resp)
	}
	resp, err = c.Call(&proto.ScanRequest{Table: "employees"})
	if err != nil {
		t.Fatal(err)
	}
	rows, isRows := resp.(*proto.RowsResponse)
	if !isRows || len(rows.Columns) != 1 || rows.Columns[0] != "employees" {
		t.Fatalf("got %#v", resp)
	}
	if h.calls != 2 {
		t.Fatalf("handler saw %d calls", h.calls)
	}
}

func TestLocalConnStats(t *testing.T) {
	c := NewLocal(&echoHandler{})
	defer c.Close()
	if _, err := c.Call(&proto.PingRequest{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Calls != 1 {
		t.Fatalf("calls = %d", st.Calls)
	}
	// Ping is 1 body byte + 8 frame header.
	if st.BytesSent != 9 {
		t.Fatalf("sent = %d, want 9", st.BytesSent)
	}
	if st.BytesReceived == 0 {
		t.Fatal("received = 0")
	}
}

func TestLocalConnClosed(t *testing.T) {
	c := NewLocal(&echoHandler{})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(&proto.PingRequest{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, &echoHandler{})
	defer srv.Close()

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 10; i++ {
		resp, err := c.Call(&proto.ScanRequest{Table: "t"})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := resp.(*proto.RowsResponse); !ok {
			t.Fatalf("got %#v", resp)
		}
	}
	st := c.Stats()
	if st.Calls != 10 || st.BytesSent == 0 || st.BytesReceived == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &echoHandler{}
	srv := NewServer(ln, h)
	defer srv.Close()

	const clients = 8
	const callsEach = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < callsEach; j++ {
				if _, err := c.Call(&proto.PingRequest{}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if h.calls != clients*callsEach {
		t.Fatalf("handler saw %d calls, want %d", h.calls, clients*callsEach)
	}
}

func TestTCPServerRejectsGarbage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, &echoHandler{})
	defer srv.Close()

	// A valid frame holding an undecodable body gets an ErrorResponse.
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := writeFrame(nc, []byte{0xff, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	body, err := readFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := proto.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := resp.(*proto.ErrorResponse); !ok || e.Code != proto.CodeBadRequest {
		t.Fatalf("got %#v", resp)
	}
}

func TestTCPClosedConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, &echoHandler{})
	defer srv.Close()
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
	if _, err := c.Call(&proto.PingRequest{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
}

func TestFaultyCrashAndRecover(t *testing.T) {
	f := NewFaulty(NewLocal(&echoHandler{}))
	defer f.Close()
	if _, err := f.Call(&proto.PingRequest{}); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	if _, err := f.Call(&proto.PingRequest{}); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("got %v", err)
	}
	f.Recover()
	if _, err := f.Call(&proto.PingRequest{}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultyCorrupter(t *testing.T) {
	f := NewFaulty(NewLocal(&echoHandler{}))
	defer f.Close()
	f.SetCorrupter(func(resp proto.Message) proto.Message {
		if ok, is := resp.(*proto.OKResponse); is {
			ok.Affected = 666
		}
		return resp
	})
	resp, err := f.Call(&proto.PingRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if ok := resp.(*proto.OKResponse); ok.Affected != 666 {
		t.Fatalf("corrupter not applied: %#v", ok)
	}
	f.SetCorrupter(nil)
	resp, err = f.Call(&proto.PingRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if ok := resp.(*proto.OKResponse); ok.Affected != 7 {
		t.Fatalf("corrupter still applied: %#v", ok)
	}
}

func TestFaultyDelay(t *testing.T) {
	f := NewFaulty(NewLocal(&echoHandler{}))
	defer f.Close()
	f.SetDelay(30 * time.Millisecond)
	start := time.Now()
	if _, err := f.Call(&proto.PingRequest{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delay not applied: %v", elapsed)
	}
}

func TestFaultyStatsPassThrough(t *testing.T) {
	f := NewFaulty(NewLocal(&echoHandler{}))
	defer f.Close()
	if _, err := f.Call(&proto.PingRequest{}); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Calls != 1 {
		t.Fatalf("stats %+v", f.Stats())
	}
}

func BenchmarkLocalCall(b *testing.B) {
	c := NewLocal(&echoHandler{})
	defer c.Close()
	req := &proto.ScanRequest{Table: "t"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPCall(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(ln, &echoHandler{})
	defer srv.Close()
	c, err := Dial(srv.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := &proto.PingRequest{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(req); err != nil {
			b.Fatal(err)
		}
	}
}
