package transport

import (
	"errors"
	"math/rand"
	"os"
	"sync"
	"time"

	"sssdb/internal/proto"
)

// ErrInjectedCrash is returned by a faulty connection in crash mode; it
// models a provider that is down or unreachable (the paper's benign
// failure model).
var ErrInjectedCrash = errors.New("transport: injected provider crash")

// Corrupter mutates a provider response in flight, modeling a malicious
// provider (the paper's malicious failure model). It may return the message
// unchanged.
type Corrupter func(resp proto.Message) proto.Message

// FaultyConn wraps a Conn with switchable fault injection. Faults can be
// toggled while queries run, letting experiments crash a provider
// mid-workload: calls parked in an injected delay abort as soon as Crash or
// Close fires rather than sleeping the delay out, and CrashAfterChunks lets
// a stream die after part of its result has already flowed.
type FaultyConn struct {
	inner Conn

	mu      sync.Mutex
	crashed bool
	closed  bool
	delay   time.Duration
	sched   *DelaySchedule
	corrupt Corrupter
	// crashAfter, when >= 0, crashes the connection after that many stream
	// chunks have been delivered (one-shot, armed by CrashAfterChunks).
	crashAfter int
	// wake is closed by Crash/Close so delayed calls unpark immediately;
	// Recover re-arms it.
	wake chan struct{}
}

// NewFaulty wraps inner with fault controls (all disabled initially).
func NewFaulty(inner Conn) *FaultyConn {
	return &FaultyConn{inner: inner, crashAfter: -1, wake: make(chan struct{})}
}

// Crash makes every subsequent call fail with ErrInjectedCrash and aborts
// calls currently parked in an injected delay.
func (c *FaultyConn) Crash() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = true
	c.wakeLocked()
}

// Recover clears crash mode (including a pending CrashAfterChunks trigger).
func (c *FaultyConn) Recover() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = false
	c.crashAfter = -1
	if !c.closed {
		// Re-arm the wake channel the crash burned so future delayed calls
		// park again. A closed connection keeps the burnt channel: its calls
		// must keep failing fast.
		select {
		case <-c.wake:
			c.wake = make(chan struct{})
		default:
		}
	}
}

// CrashAfterChunks arms a one-shot mid-stream crash: the next streams
// deliver n more chunks in total, then the connection enters crash mode
// exactly as if Crash had been called. n = 0 crashes the next stream before
// its first chunk.
func (c *FaultyConn) CrashAfterChunks(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashAfter = n
}

// SetDelay injects a fixed latency before each call. The latency is
// interruptible: Crash and Close abort a parked call immediately, and a
// call deadline nearer than the delay turns the park into a timeout.
func (c *FaultyConn) SetDelay(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delay = d
}

// DelaySchedule is a deterministic per-call latency distribution: each call
// draws base + uniform[0, jitter) from a seeded source, so straggler
// experiments inject realistic (jittered) latency while staying exactly
// reproducible across runs and safe under -race. A schedule may be shared
// by several FaultyConns; the draw order then depends on call interleaving,
// but the multiset of delays drawn stays seed-determined.
type DelaySchedule struct {
	mu     sync.Mutex
	rng    *rand.Rand
	base   time.Duration
	jitter time.Duration
}

// NewDelaySchedule builds a schedule drawing base + uniform[0, jitter) per
// call from a source seeded with seed. A zero jitter yields exactly base.
func NewDelaySchedule(seed int64, base, jitter time.Duration) *DelaySchedule {
	return &DelaySchedule{rng: rand.New(rand.NewSource(seed)), base: base, jitter: jitter}
}

// Next draws the next per-call delay.
func (s *DelaySchedule) Next() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.base
	if s.jitter > 0 {
		d += time.Duration(s.rng.Int63n(int64(s.jitter)))
	}
	return d
}

// SetDelaySchedule installs (or clears, with nil) a per-call delay
// schedule. A schedule takes precedence over SetDelay's fixed latency.
func (c *FaultyConn) SetDelaySchedule(s *DelaySchedule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sched = s
}

// SetCorrupter installs (or clears, with nil) a response corrupter.
func (c *FaultyConn) SetCorrupter(f Corrupter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.corrupt = f
}

// wakeLocked unparks delayed calls; callers hold mu.
func (c *FaultyConn) wakeLocked() {
	select {
	case <-c.wake:
		// Already woken (e.g. Crash after Close); nothing parked re-arms it.
	default:
		close(c.wake)
	}
}

// gate snapshots the fault state and serves the injected delay, returning
// the error the call must fail with (nil to proceed). The delay aborts the
// moment Crash or Close fires instead of sleeping unconditionally, and a
// call deadline nearer than the delay parks only until the deadline, then
// fails with a timeout — exactly what a real slow provider looks like to a
// deadline-bounded caller.
func (c *FaultyConn) gate(deadline time.Time) (Corrupter, error) {
	c.mu.Lock()
	if c.crashed {
		c.mu.Unlock()
		return nil, ErrInjectedCrash
	}
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	delay, corrupt, wake := c.delay, c.corrupt, c.wake
	if c.sched != nil {
		delay = c.sched.Next()
	}
	c.mu.Unlock()
	if delay > 0 {
		timedOut := false
		if !deadline.IsZero() {
			if rem := time.Until(deadline); rem < delay {
				delay, timedOut = rem, true
			}
		}
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-wake:
				t.Stop()
			}
		}
		// Re-check: the fault state may have flipped while parked, and a
		// wake can be stale (Crash then Recover before this call observed
		// either) — in that case just proceed.
		c.mu.Lock()
		crashed, closed := c.crashed, c.closed
		c.mu.Unlock()
		if crashed {
			return nil, ErrInjectedCrash
		}
		if closed {
			return nil, ErrClosed
		}
		if timedOut {
			return nil, os.ErrDeadlineExceeded
		}
	}
	return corrupt, nil
}

// Call implements Conn.
func (c *FaultyConn) Call(req proto.Message) (proto.Message, error) {
	return c.CallDeadline(req, time.Time{})
}

// CallDeadline implements DeadlineCaller: the injected delay respects the
// deadline, and the remaining budget propagates to the wrapped connection.
func (c *FaultyConn) CallDeadline(req proto.Message, deadline time.Time) (proto.Message, error) {
	corrupt, err := c.gate(deadline)
	if err != nil {
		return nil, err
	}
	resp, err := CallWithDeadline(c.inner, req, deadline)
	if err != nil {
		return nil, err
	}
	if corrupt != nil {
		resp = corrupt(resp)
	}
	return resp, nil
}

// CallStream implements StreamCaller by forwarding to the wrapped
// connection, applying the configured faults: a crashed connection fails
// before any chunk flows, a corrupter is applied to every chunk (a
// malicious provider can tamper with any part of a streamed result), and an
// armed CrashAfterChunks kills the stream mid-flight after its quota of
// chunks has been delivered.
func (c *FaultyConn) CallStream(req proto.Message, yield func(*proto.RowsResponse) error) error {
	return c.CallStreamDeadline(req, time.Time{}, yield)
}

// CallStreamDeadline implements StreamDeadlineCaller; the configured faults
// apply under the caller's deadline exactly as in CallDeadline.
func (c *FaultyConn) CallStreamDeadline(req proto.Message, deadline time.Time, yield func(*proto.RowsResponse) error) error {
	corrupt, err := c.gate(deadline)
	if err != nil {
		return err
	}
	wrapped := func(chunk *proto.RowsResponse) error {
		c.mu.Lock()
		if c.crashed {
			c.mu.Unlock()
			return ErrInjectedCrash
		}
		if c.crashAfter == 0 {
			// Quota exhausted: flip into crash mode (one-shot) and kill the
			// stream with the chunk undelivered.
			c.crashed = true
			c.crashAfter = -1
			c.wakeLocked()
			c.mu.Unlock()
			return ErrInjectedCrash
		}
		if c.crashAfter > 0 {
			c.crashAfter--
		}
		c.mu.Unlock()
		if corrupt != nil {
			if m, ok := corrupt(chunk).(*proto.RowsResponse); ok {
				chunk = m
			}
		}
		return yield(chunk)
	}
	return CallStreamWithDeadline(c.inner, req, deadline, wrapped)
}

// Stats implements Conn.
func (c *FaultyConn) Stats() Stats { return c.inner.Stats() }

// Close implements Conn.
func (c *FaultyConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.wakeLocked()
	c.mu.Unlock()
	return c.inner.Close()
}
