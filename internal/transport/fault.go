package transport

import (
	"errors"
	"sync"
	"time"

	"sssdb/internal/proto"
)

// ErrInjectedCrash is returned by a faulty connection in crash mode; it
// models a provider that is down or unreachable (the paper's benign
// failure model).
var ErrInjectedCrash = errors.New("transport: injected provider crash")

// Corrupter mutates a provider response in flight, modeling a malicious
// provider (the paper's malicious failure model). It may return the message
// unchanged.
type Corrupter func(resp proto.Message) proto.Message

// FaultyConn wraps a Conn with switchable fault injection. Faults can be
// toggled while queries run, letting experiments crash a provider
// mid-workload.
type FaultyConn struct {
	inner Conn

	mu      sync.Mutex
	crashed bool
	delay   time.Duration
	corrupt Corrupter
}

// NewFaulty wraps inner with fault controls (all disabled initially).
func NewFaulty(inner Conn) *FaultyConn {
	return &FaultyConn{inner: inner}
}

// Crash makes every subsequent call fail with ErrInjectedCrash.
func (c *FaultyConn) Crash() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = true
}

// Recover clears crash mode.
func (c *FaultyConn) Recover() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = false
}

// SetDelay injects a fixed latency before each call.
func (c *FaultyConn) SetDelay(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delay = d
}

// SetCorrupter installs (or clears, with nil) a response corrupter.
func (c *FaultyConn) SetCorrupter(f Corrupter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.corrupt = f
}

// Call implements Conn.
func (c *FaultyConn) Call(req proto.Message) (proto.Message, error) {
	c.mu.Lock()
	crashed, delay, corrupt := c.crashed, c.delay, c.corrupt
	c.mu.Unlock()
	if crashed {
		return nil, ErrInjectedCrash
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	resp, err := c.inner.Call(req)
	if err != nil {
		return nil, err
	}
	if corrupt != nil {
		resp = corrupt(resp)
	}
	return resp, nil
}

// CallStream implements StreamCaller by forwarding to the wrapped
// connection, applying the configured faults: a crashed connection fails
// before any chunk flows, and a corrupter is applied to every chunk (a
// malicious provider can tamper with any part of a streamed result).
func (c *FaultyConn) CallStream(req proto.Message, yield func(*proto.RowsResponse) error) error {
	c.mu.Lock()
	crashed, delay, corrupt := c.crashed, c.delay, c.corrupt
	c.mu.Unlock()
	if crashed {
		return ErrInjectedCrash
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	wrapped := yield
	if corrupt != nil {
		wrapped = func(chunk *proto.RowsResponse) error {
			if m, ok := corrupt(chunk).(*proto.RowsResponse); ok {
				chunk = m
			}
			return yield(chunk)
		}
	}
	return CallStream(c.inner, req, wrapped)
}

// Stats implements Conn.
func (c *FaultyConn) Stats() Stats { return c.inner.Stats() }

// Close implements Conn.
func (c *FaultyConn) Close() error { return c.inner.Close() }
