package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sssdb/internal/proto"
)

// sleepHandler answers Ping with OK and serves scans after a per-table
// delay ("slow" sleeps, everything else is immediate), tracking how many
// handlers run concurrently.
type sleepHandler struct {
	delay   time.Duration
	current atomic.Int32
	peak    atomic.Int32
	calls   atomic.Int32
}

func (h *sleepHandler) Handle(req proto.Message) proto.Message {
	cur := h.current.Add(1)
	defer h.current.Add(-1)
	for {
		p := h.peak.Load()
		if cur <= p || h.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	h.calls.Add(1)
	switch m := req.(type) {
	case *proto.PingRequest:
		return &proto.OKResponse{}
	case *proto.ScanRequest:
		if m.Table == "slow" {
			time.Sleep(h.delay)
		}
		return &proto.RowsResponse{Columns: []string{m.Table}}
	default:
		return &proto.ErrorResponse{Code: proto.CodeBadRequest, Msg: "unexpected"}
	}
}

func newTestServer(t testing.TB, h Handler, cfg ServerConfig) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(ln, h, cfg)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestMuxConcurrentInFlight proves N in-flight requests share one provider
// connection with no per-request serialization: 8 scans that each block
// the handler 50ms complete together far faster than 8×50ms, and the
// server observes them running concurrently.
func TestMuxConcurrentInFlight(t *testing.T) {
	const n = 8
	const delay = 50 * time.Millisecond
	h := &sleepHandler{delay: delay}
	srv := newTestServer(t, h, ServerConfig{})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Call(&proto.ScanRequest{Table: "slow"})
			if err != nil {
				errs <- err
				return
			}
			if _, ok := resp.(*proto.RowsResponse); !ok {
				errs <- fmt.Errorf("got %#v", resp)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > time.Duration(n)*delay/2 {
		t.Fatalf("%d concurrent calls took %v — requests are serializing on the connection", n, elapsed)
	}
	if peak := h.peak.Load(); peak < 2 {
		t.Fatalf("server handler peak concurrency %d; want in-flight overlap", peak)
	}
	if st := c.Stats(); st.Calls != n {
		t.Fatalf("stats %+v, want %d calls", st, n)
	}
}

// TestMuxOutOfOrderCompletion shows a delayed response being overtaken by
// a later fast one on the same connection: the fast scan must complete
// while the slow one is still pending.
func TestMuxOutOfOrderCompletion(t *testing.T) {
	h := &sleepHandler{delay: 200 * time.Millisecond}
	srv := newTestServer(t, h, ServerConfig{})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Prime negotiation so both timed calls ride the multiplexed path.
	if _, err := c.Call(&proto.PingRequest{}); err != nil {
		t.Fatal(err)
	}

	type done struct {
		table string
		at    time.Time
		err   error
	}
	ch := make(chan done, 2)
	issue := func(table string) {
		_, err := c.Call(&proto.ScanRequest{Table: table})
		ch <- done{table: table, at: time.Now(), err: err}
	}
	go issue("slow")
	time.Sleep(20 * time.Millisecond) // ensure the slow request is on the wire first
	go issue("fast")

	first := <-ch
	second := <-ch
	if first.err != nil || second.err != nil {
		t.Fatal(first.err, second.err)
	}
	if first.table != "fast" {
		t.Fatalf("%q completed first; the late fast response should overtake the delayed one", first.table)
	}
	if second.at.Before(first.at) {
		t.Fatal("completion timestamps out of order")
	}
}

// TestMuxStatsExact locks down byte accounting under v2 framing: the
// handshake travels as legacy frames, each request/response as a v2 frame.
func TestMuxStatsExact(t *testing.T) {
	srv := newTestServer(t, &sleepHandler{}, ServerConfig{})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&proto.PingRequest{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	hello := frameLen(helloBody(protoVersionMux, "")) // 6-byte body + 8-byte legacy header
	ping := frameLenV2(proto.Encode(&proto.PingRequest{}))
	if want := hello + ping; st.BytesSent != want {
		t.Fatalf("sent %d bytes, want %d", st.BytesSent, want)
	}
	ack := frameLen(ackBody(protoVersionMux))
	ok := frameLenV2(proto.Encode(&proto.OKResponse{}))
	if want := ack + ok; st.BytesReceived != want {
		t.Fatalf("received %d bytes, want %d", st.BytesReceived, want)
	}
	if st.Calls != 1 {
		t.Fatalf("calls %d, want 1", st.Calls)
	}
}

// rowsHandler returns n rows of two cells each for any scan.
type rowsHandler struct{ n int }

func (h *rowsHandler) Handle(req proto.Message) proto.Message {
	if _, ok := req.(*proto.ScanRequest); !ok {
		return &proto.ErrorResponse{Code: proto.CodeBadRequest, Msg: "unexpected"}
	}
	rows := make([]proto.Row, h.n)
	for i := range rows {
		rows[i] = proto.Row{
			ID:    uint64(i + 1),
			Cells: [][]byte{[]byte(fmt.Sprintf("cell-a-%04d", i)), []byte(fmt.Sprintf("cell-b-%04d", i))},
		}
	}
	return &proto.RowsResponse{Columns: []string{"a", "b"}, Rows: rows, Proof: []byte("proof")}
}

// TestMuxStreamingReassembly forces tiny chunks server-side and checks
// that Call transparently reassembles the full response.
func TestMuxStreamingReassembly(t *testing.T) {
	const n = 500
	srv := newTestServer(t, &rowsHandler{n: n}, ServerConfig{ChunkBytes: 256})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&proto.ScanRequest{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := resp.(*proto.RowsResponse)
	if !ok {
		t.Fatalf("got %#v", resp)
	}
	if len(rr.Rows) != n {
		t.Fatalf("reassembled %d rows, want %d", len(rr.Rows), n)
	}
	for i, row := range rr.Rows {
		if row.ID != uint64(i+1) {
			t.Fatalf("row %d has id %d; chunk order lost", i, row.ID)
		}
	}
	if string(rr.Proof) != "proof" {
		t.Fatalf("proof %q did not survive streaming", rr.Proof)
	}
	if len(rr.Columns) != 2 {
		t.Fatalf("columns %v", rr.Columns)
	}
}

// TestMuxCallStream consumes the chunk stream incrementally and checks
// that multiple chunks actually arrive.
func TestMuxCallStream(t *testing.T) {
	const n = 500
	srv := newTestServer(t, &rowsHandler{n: n}, ServerConfig{ChunkBytes: 256})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var chunks, rows int
	var proof []byte
	err = CallStream(c, &proto.ScanRequest{Table: "t"}, func(rr *proto.RowsResponse) error {
		chunks++
		rows += len(rr.Rows)
		if len(rr.Proof) > 0 {
			proof = rr.Proof
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if chunks < 2 {
		t.Fatalf("%d chunks; want a streamed sequence", chunks)
	}
	if rows != n {
		t.Fatalf("streamed %d rows, want %d", rows, n)
	}
	if string(proof) != "proof" {
		t.Fatalf("proof %q", proof)
	}
}

// TestCallStreamFallback exercises the buffered fallback for conns that
// cannot stream (the in-process loopback).
func TestCallStreamFallback(t *testing.T) {
	c := NewLocal(&rowsHandler{n: 10})
	defer c.Close()
	var chunks, rows int
	err := CallStream(c, &proto.ScanRequest{Table: "t"}, func(rr *proto.RowsResponse) error {
		chunks++
		rows += len(rr.Rows)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 1 || rows != 10 {
		t.Fatalf("chunks=%d rows=%d", chunks, rows)
	}
}

// legacyServer emulates a pre-v2 provider: strict one-frame-in, one-frame-
// out, no negotiation. A v2 client must detect it and fall back.
func legacyServer(t *testing.T, h Handler) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				for {
					body, err := readFrame(nc)
					if err != nil {
						return
					}
					req, err := proto.Decode(body)
					var resp proto.Message
					if err != nil {
						resp = &proto.ErrorResponse{Code: proto.CodeBadRequest, Msg: err.Error()}
					} else {
						resp = h.Handle(req)
					}
					if err := writeFrame(nc, proto.Encode(resp)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestNegotiationFallbackToLegacyServer dials an old-protocol provider
// with a new client and checks calls still work (on the v1 path).
func TestNegotiationFallbackToLegacyServer(t *testing.T) {
	h := &sleepHandler{}
	addr, stop := legacyServer(t, h)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		resp, err := c.Call(&proto.ScanRequest{Table: "t"})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := resp.(*proto.RowsResponse); !ok {
			t.Fatalf("got %#v", resp)
		}
	}
	tc := c.(*tcpConn)
	if v := tc.sess.version.Load(); v != protoVersionLegacy {
		t.Fatalf("negotiated version %d, want legacy", v)
	}
}

// TestLegacyClientAgainstMuxServer forces the v1 client path against a v2
// server: the server must recognize the absent hello and serve in order.
func TestLegacyClientAgainstMuxServer(t *testing.T) {
	h := &sleepHandler{}
	srv := newTestServer(t, h, ServerConfig{})
	c, err := DialWith(srv.Addr().String(), DialConfig{DisableMultiplex: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Call(&proto.PingRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.calls.Load(); got != 5 {
		t.Fatalf("handler saw %d calls", got)
	}
}

// TestReconnectAfterServerRestart is the connection-poisoning regression:
// a call that dies with the server must not strand the provider — once a
// server is back on the same address, the next call redials and succeeds.
func TestReconnectAfterServerRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := NewServerWith(ln, &sleepHandler{}, ServerConfig{})
	c, err := DialTimeout(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&proto.PingRequest{}); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	// The in-flight-free connection is now dead; the first call after the
	// crash may fail (no server yet) — that error must not poison the conn.
	if _, err := c.Call(&proto.PingRequest{}); err == nil {
		t.Fatal("call succeeded with the server down")
	}

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	srv2 := NewServerWith(ln2, &sleepHandler{}, ServerConfig{})
	defer srv2.Close()

	var lastErr error
	for i := 0; i < 20; i++ {
		if _, lastErr = c.Call(&proto.PingRequest{}); lastErr == nil {
			return // reconnected without a new Dial
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("connection never recovered after server restart: %v", lastErr)
}

// errListener always fails Accept, counting attempts.
type errListener struct {
	accepts atomic.Int32
	addr    net.Addr
	closed  chan struct{}
	once    sync.Once
}

func (l *errListener) Accept() (net.Conn, error) {
	l.accepts.Add(1)
	select {
	case <-l.closed:
		return nil, net.ErrClosed
	default:
		return nil, errors.New("persistent accept failure")
	}
}
func (l *errListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}
func (l *errListener) Addr() net.Addr { return l.addr }

// TestAcceptLoopBackoff verifies the accept loop backs off exponentially
// on persistent errors instead of busy-spinning.
func TestAcceptLoopBackoff(t *testing.T) {
	l := &errListener{closed: make(chan struct{}), addr: &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)}}
	srv := NewServer(l, &sleepHandler{})
	time.Sleep(200 * time.Millisecond)
	srv.Close()
	// With 5ms initial backoff doubling to 1s, 200ms admits ~6 attempts;
	// a busy spin would rack up thousands.
	if n := l.accepts.Load(); n > 20 {
		t.Fatalf("%d accept attempts in 200ms — accept loop is spinning", n)
	}
}

// TestFaultyConnConcurrentMux drives a FaultyConn wrapping a multiplexed
// TCP conn from many goroutines while faults toggle, under -race: crash
// and recover mid-traffic, a delayed call overtaken by a fast one, and a
// corrupter rewriting responses.
func TestFaultyConnConcurrentMux(t *testing.T) {
	h := &sleepHandler{delay: 50 * time.Millisecond}
	srv := newTestServer(t, h, ServerConfig{})
	inner, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(inner)
	defer f.Close()

	// Concurrent calls while crash toggles: every call either succeeds or
	// fails with the injected crash, never anything else.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				_, err := f.Call(&proto.PingRequest{})
				if err != nil && !errors.Is(err, ErrInjectedCrash) {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		f.Crash()
		time.Sleep(time.Millisecond)
		f.Recover()
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// A delayed call is overtaken by a later fast one on the same conn.
	f.SetDelay(120 * time.Millisecond)
	type done struct {
		name string
		err  error
	}
	ch := make(chan done, 2)
	go func() {
		_, err := f.Call(&proto.ScanRequest{Table: "delayed"})
		ch <- done{"delayed", err}
	}()
	time.Sleep(10 * time.Millisecond)
	f.SetDelay(0)
	go func() {
		_, err := f.Call(&proto.ScanRequest{Table: "fast"})
		ch <- done{"fast", err}
	}()
	first := <-ch
	second := <-ch
	if first.err != nil || second.err != nil {
		t.Fatal(first.err, second.err)
	}
	if first.name != "fast" {
		t.Fatalf("%q finished first; delayed call should be overtaken", first.name)
	}

	// Corrupter applies to concurrent multiplexed responses.
	f.SetCorrupter(func(resp proto.Message) proto.Message {
		if rr, ok := resp.(*proto.RowsResponse); ok {
			rr.Columns = append(rr.Columns, "corrupted")
		}
		return resp
	})
	var cwg sync.WaitGroup
	cerrs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			resp, err := f.Call(&proto.ScanRequest{Table: "t"})
			if err != nil {
				cerrs <- err
				return
			}
			rr := resp.(*proto.RowsResponse)
			if rr.Columns[len(rr.Columns)-1] != "corrupted" {
				cerrs <- fmt.Errorf("corrupter skipped: %v", rr.Columns)
			}
		}()
	}
	cwg.Wait()
	close(cerrs)
	for err := range cerrs {
		t.Fatal(err)
	}
}

// TestMuxPerRequestTimeout checks that one slow request trips its own
// deadline while a concurrent fast request on the same conn succeeds.
func TestMuxPerRequestTimeout(t *testing.T) {
	h := &sleepHandler{delay: 500 * time.Millisecond}
	srv := newTestServer(t, h, ServerConfig{})
	c, err := DialTimeout(srv.Addr().String(), 120*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&proto.PingRequest{}); err != nil {
		t.Fatal(err)
	}
	type res struct {
		table string
		err   error
	}
	ch := make(chan res, 2)
	go func() {
		_, err := c.Call(&proto.ScanRequest{Table: "slow"})
		ch <- res{"slow", err}
	}()
	time.Sleep(10 * time.Millisecond)
	go func() {
		_, err := c.Call(&proto.ScanRequest{Table: "fast"})
		ch <- res{"fast", err}
	}()
	for i := 0; i < 2; i++ {
		r := <-ch
		switch r.table {
		case "slow":
			nerr, ok := r.err.(net.Error)
			if !ok || !nerr.Timeout() {
				t.Fatalf("slow call: want timeout, got %v", r.err)
			}
		case "fast":
			if r.err != nil {
				t.Fatalf("fast call failed alongside the slow one: %v", r.err)
			}
		}
	}
}
