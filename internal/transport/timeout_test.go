package transport

import (
	"net"
	"testing"
	"time"

	"sssdb/internal/proto"
)

// A provider that accepts connections but never answers must trip the
// per-call deadline instead of hanging the client forever.
func TestDialTimeoutTripsOnSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			// Read the request but never respond.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := nc.Read(buf); err != nil {
						nc.Close()
						return
					}
				}
			}()
		}
	}()
	c, err := DialTimeout(ln.Addr().String(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Call(&proto.PingRequest{})
	if err == nil {
		t.Fatal("call to silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not trip promptly: %v", elapsed)
	}
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("expected a timeout error, got %v", err)
	}
}

// A responsive server is unaffected by the deadline.
func TestDialTimeoutNormalOperation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, &echoHandler{})
	defer srv.Close()
	c, err := DialTimeout(srv.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Call(&proto.PingRequest{}); err != nil {
			t.Fatal(err)
		}
	}
}

// Dialing a dead endpoint fails fast with a timeout configured.
func TestDialTimeoutConnectFailure(t *testing.T) {
	// Reserve and release a port so nothing is listening there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	start := time.Now()
	if _, err := DialTimeout(addr, 200*time.Millisecond); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dial did not fail promptly: %v", elapsed)
	}
}
