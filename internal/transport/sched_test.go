package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sssdb/internal/proto"
)

// gateScheduler builds a 1-worker scheduler whose first item blocks until
// release is called, so tests can stage a known backlog before any
// scheduling decision is made.
func gateScheduler(t *testing.T, maxQueue int, weights map[string]int) (s *scheduler, release func()) {
	t.Helper()
	s = newScheduler(1, maxQueue, weights)
	t.Cleanup(s.close)
	gate := make(chan struct{})
	if !s.submit("gate", &schedItem{enq: time.Now(), run: func() { <-gate }}) {
		t.Fatal("gate item shed")
	}
	// Wait for the worker to pick the gate up so staged submissions all
	// queue behind it.
	deadline := time.Now().Add(time.Second)
	for {
		s.mu.Lock()
		executing := s.executing
		s.mu.Unlock()
		if executing == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the gate item")
		}
		time.Sleep(time.Millisecond)
	}
	return s, func() { close(gate) }
}

// TestSchedulerDWRRWeights stages backlogs for a weight-3 and a weight-1
// tenant behind a gate and checks the drain order: deficit round robin
// with quantum 4 must serve them in strict 12:4 blocks.
func TestSchedulerDWRRWeights(t *testing.T) {
	s, release := gateScheduler(t, 1024, map[string]int{"heavy": 3})
	var mu sync.Mutex
	var order []string
	record := func(name string) func() {
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	const perTenant = 48
	for i := 0; i < perTenant; i++ {
		if !s.submit("heavy", &schedItem{enq: time.Now(), run: record("heavy")}) {
			t.Fatal("heavy submission shed")
		}
		if !s.submit("light", &schedItem{enq: time.Now(), run: record("light")}) {
			t.Fatal("light submission shed")
		}
	}
	release()
	if !s.waitIdle(5 * time.Second) {
		t.Fatal("scheduler never drained")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2*perTenant {
		t.Fatalf("ran %d items, want %d", len(order), 2*perTenant)
	}
	// One full DWRR round is 12 heavy + 4 light; the backlog covers four
	// whole rounds before either queue empties.
	for round := 0; round < 4; round++ {
		block := order[round*16 : (round+1)*16]
		heavy := 0
		for _, name := range block {
			if name == "heavy" {
				heavy++
			}
		}
		if heavy != 12 {
			t.Fatalf("round %d served %d heavy of 16 (%v), want 12", round, heavy, block)
		}
	}
}

// TestSchedulerQueueBound proves the per-tenant bound sheds instead of
// queueing without limit, and that distinct tenants have distinct bounds.
func TestSchedulerQueueBound(t *testing.T) {
	s, release := gateScheduler(t, 2, nil)
	nop := func() {}
	for i := 0; i < 2; i++ {
		if !s.submit("a", &schedItem{enq: time.Now(), run: nop}) {
			t.Fatalf("submission %d shed below the bound", i)
		}
	}
	if s.submit("a", &schedItem{enq: time.Now(), run: nop}) {
		t.Fatal("submission beyond the tenant bound was admitted")
	}
	// Another tenant's queue is independent.
	if !s.submit("b", &schedItem{enq: time.Now(), run: nop}) {
		t.Fatal("tenant b shed while empty")
	}
	st := s.stats()
	if st.Shed != 1 {
		t.Fatalf("shed count %d, want 1", st.Shed)
	}
	release()
	if !s.waitIdle(5 * time.Second) {
		t.Fatal("scheduler never drained")
	}
	if st := s.stats(); st.Admitted != 4 { // gate + 2×a + 1×b
		t.Fatalf("admitted %d, want 4", st.Admitted)
	}
}

// blockingHandler parks scan handlers on a channel (pings answer
// immediately) so tests control exactly when server capacity frees up.
type blockingHandler struct {
	release chan struct{}
	once    sync.Once
	started atomic.Int32
}

func (h *blockingHandler) Handle(req proto.Message) proto.Message {
	if _, ok := req.(*proto.ScanRequest); ok {
		h.started.Add(1)
		<-h.release
	}
	return &proto.OKResponse{}
}

// unblock releases every parked handler; safe to call more than once.
func (h *blockingHandler) unblock() { h.once.Do(func() { close(h.release) }) }

// saturate stages a known saturation on a 1-worker, 1-slot server over c:
// one scan occupying the worker and one sitting in the tenant queue, both
// issued sequentially so neither can steal the other's slot. The returned
// channel yields the two staged responses after h.unblock.
func saturate(t *testing.T, srv *Server, c Conn, h *blockingHandler) <-chan proto.Message {
	t.Helper()
	results := make(chan proto.Message, 2)
	call := func() {
		resp, err := c.Call(&proto.ScanRequest{Table: "t"})
		if err != nil {
			t.Error(err)
		}
		results <- resp
	}
	go call()
	deadline := time.Now().Add(2 * time.Second)
	for h.started.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no handler started")
		}
		time.Sleep(time.Millisecond)
	}
	go call()
	for {
		st := srv.SchedStats()
		if st.QueueDepth == 1 {
			return results
		}
		if time.Now().After(deadline) {
			t.Fatalf("second call never queued: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerBusyFastFail saturates a 1-worker, 1-slot server and checks
// that the overflow call is shed with CodeServerBusy quickly — it must not
// wait behind the blocked handler.
func TestServerBusyFastFail(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	srv := newTestServer(t, h, ServerConfig{MaxInflight: 1, MaxQueue: -1})
	t.Cleanup(h.unblock)
	c, err := DialWith(srv.Addr().String(), DialConfig{Timeout: 5 * time.Second, BusyRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results := saturate(t, srv, c, h)
	start := time.Now()
	resp, err := c.Call(&proto.ScanRequest{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	shedAfter := time.Since(start)
	er, ok := resp.(*proto.ErrorResponse)
	if !ok || er.Code != proto.CodeServerBusy {
		t.Fatalf("overflow call got %#v, want CodeServerBusy", resp)
	}
	if !IsBusy(er.Err()) {
		t.Fatal("IsBusy must match a remote CodeServerBusy error")
	}
	if shedAfter > time.Second {
		t.Fatalf("shed took %v; busy must fast-fail, not wait for capacity", shedAfter)
	}
	h.unblock()
	for i := 0; i < 2; i++ {
		if resp := <-results; resp == nil {
			t.Fatal("blocked call lost its response")
		}
	}
	if st := srv.SchedStats(); st.Shed == 0 {
		t.Fatalf("server stats recorded no sheds: %+v", st)
	}
}

// TestClientBusyRetry proves the transparent busy-retry path: a call shed
// while the server is saturated succeeds once capacity frees up, without
// the caller seeing the rejection.
func TestClientBusyRetry(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	srv := newTestServer(t, h, ServerConfig{MaxInflight: 1, MaxQueue: -1})
	t.Cleanup(h.unblock)
	c, err := DialWith(srv.Addr().String(), DialConfig{Timeout: 5 * time.Second, BusyRetries: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results := saturate(t, srv, c, h)
	// Release capacity shortly after the overflow call's first attempts
	// shed; its backoff loop must then get through.
	go func() {
		time.Sleep(30 * time.Millisecond)
		h.unblock()
	}()
	resp, err := c.Call(&proto.ScanRequest{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(*proto.OKResponse); !ok {
		t.Fatalf("retried call got %#v, want OK", resp)
	}
	<-results
	<-results
}

// TestServerBusyLegacyPath routes a v1 (non-multiplexed) client through
// the same admission control: with the single worker blocked and the
// anonymous tenant's queue full, a legacy call is shed with busy.
func TestServerBusyLegacyPath(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	defer h.unblock()
	srv := newTestServer(t, h, ServerConfig{MaxInflight: 1, MaxQueue: -1})
	// Legacy connections serve one request at a time, so saturation needs
	// several connections.
	block, err := DialWith(srv.Addr().String(), DialConfig{Timeout: 5 * time.Second, DisableMultiplex: true, BusyRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer block.Close()
	queued, err := DialWith(srv.Addr().String(), DialConfig{Timeout: 5 * time.Second, DisableMultiplex: true, BusyRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer queued.Close()
	go block.Call(&proto.ScanRequest{Table: "t"})
	deadline := time.Now().Add(2 * time.Second)
	for h.started.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no handler started")
		}
		time.Sleep(time.Millisecond)
	}
	go queued.Call(&proto.ScanRequest{Table: "t"})
	// Wait for the queued call to take the single queue slot. The v1
	// client writes then blocks reading, so poll the scheduler.
	for {
		st := srv.SchedStats()
		if st.QueueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued call never staged: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	c, err := DialWith(srv.Addr().String(), DialConfig{Timeout: 5 * time.Second, DisableMultiplex: true, BusyRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&proto.ScanRequest{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if er, ok := resp.(*proto.ErrorResponse); !ok || er.Code != proto.CodeServerBusy {
		t.Fatalf("legacy overflow call got %#v, want CodeServerBusy", resp)
	}
}

// TestServerShutdownDrains checks graceful shutdown semantics: in-flight
// and queued work completes, new work is shed, and Shutdown reports a
// clean drain.
func TestServerShutdownDrains(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	srv := newTestServer(t, h, ServerConfig{MaxInflight: 1})
	t.Cleanup(h.unblock)
	c, err := DialWith(srv.Addr().String(), DialConfig{Timeout: 5 * time.Second, BusyRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan proto.Message, 1)
	go func() {
		resp, err := c.Call(&proto.ScanRequest{Table: "t"})
		if err != nil {
			t.Error(err)
		}
		done <- resp
	}()
	deadline := time.Now().Add(2 * time.Second)
	for h.started.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no handler started")
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		h.unblock()
	}()
	if !srv.Shutdown(5 * time.Second) {
		t.Fatal("Shutdown reported an unclean drain")
	}
	select {
	case resp := <-done:
		if _, ok := resp.(*proto.OKResponse); !ok {
			t.Fatalf("draining call got %#v, want OK", resp)
		}
	case <-time.After(time.Second):
		t.Fatal("in-flight call never completed during drain")
	}
}

// statsHandler answers pings with an empty StatsResponse so tests can
// observe what the transport layer adds to it.
type statsHandler struct{}

func (statsHandler) Handle(req proto.Message) proto.Message {
	if _, ok := req.(*proto.PingRequest); ok {
		return &proto.StatsResponse{}
	}
	return &proto.OKResponse{}
}

// TestSchedStatsOnPing checks that stats replies passing through the
// server pick up the admission scheduler's counters, so every ping doubles
// as a queue-pressure probe.
func TestSchedStatsOnPing(t *testing.T) {
	srv := newTestServer(t, statsHandler{}, ServerConfig{})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Call(&proto.PingRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.Call(&proto.PingRequest{})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := resp.(*proto.StatsResponse)
	if !ok {
		t.Fatalf("ping answered %T", resp)
	}
	if st.Admitted < 5 {
		t.Fatalf("stats reply reports %d admitted, want >=5", st.Admitted)
	}
	if st.HandleP50 == 0 {
		t.Fatal("stats reply carries no handler latency quantiles")
	}
}

// TestTenantFairnessManyConnections is the fairness regression test for
// connection-count abuse: one heavy tenant offering ~10x its fair share
// across twelve connections competes with three light tenants on one
// connection each. Because scheduling is keyed by the tenant from the
// session hello — not by connection — the light tenants' throughput must
// stay within 70% of what they would get on an idle server (their offered
// rate, since they request well below fair share).
func TestTenantFairnessManyConnections(t *testing.T) {
	const (
		handlerDelay = 5 * time.Millisecond
		workers      = 2 // capacity = workers/delay = 400 req/s
		lightTenants = 3
		lightOps     = 50
		lightGap     = 20 * time.Millisecond // 50 req/s per light tenant
		heavyConns   = 12
		perConnLoad  = 2
	)
	h := &sleepHandler{delay: handlerDelay}
	srv := newTestServer(t, h, ServerConfig{MaxInflight: workers})

	var stop atomic.Bool
	var heavyWG sync.WaitGroup
	heavyConnsList := make([]Conn, 0, heavyConns)
	for i := 0; i < heavyConns; i++ {
		c, err := DialWith(srv.Addr().String(), DialConfig{
			Timeout: 10 * time.Second,
			Tenant:  "heavy", // every connection claims the same tenant
		})
		if err != nil {
			t.Fatal(err)
		}
		heavyConnsList = append(heavyConnsList, c)
		for j := 0; j < perConnLoad; j++ {
			heavyWG.Add(1)
			go func(c Conn) {
				defer heavyWG.Done()
				for !stop.Load() {
					c.Call(&proto.ScanRequest{Table: "slow"})
				}
			}(c)
		}
	}
	defer func() {
		stop.Store(true)
		heavyWG.Wait()
		for _, c := range heavyConnsList {
			c.Close()
		}
	}()

	// Let the heavy flood saturate the server before the light tenants
	// start, so they never see an idle honeymoon.
	time.Sleep(100 * time.Millisecond)

	var lightWG sync.WaitGroup
	completed := make([]atomic.Int32, lightTenants)
	for tn := 0; tn < lightTenants; tn++ {
		c, err := DialWith(srv.Addr().String(), DialConfig{
			Timeout: 10 * time.Second,
			Tenant:  "light-" + string(rune('a'+tn)),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		lightWG.Add(1)
		go func(tn int, c Conn) {
			defer lightWG.Done()
			var calls sync.WaitGroup
			ticker := time.NewTicker(lightGap)
			defer ticker.Stop()
			for i := 0; i < lightOps; i++ {
				// Open loop: fire at the scheduled time whether or not
				// earlier calls have completed.
				calls.Add(1)
				go func() {
					defer calls.Done()
					resp, err := c.Call(&proto.ScanRequest{Table: "slow"})
					if err != nil {
						return
					}
					if _, ok := resp.(*proto.RowsResponse); ok {
						completed[tn].Add(1)
					}
				}()
				<-ticker.C
			}
			calls.Wait()
		}(tn, c)
	}
	lightWG.Wait()

	for tn := 0; tn < lightTenants; tn++ {
		got := completed[tn].Load()
		if want := int32(lightOps * 7 / 10); got < want {
			t.Errorf("light tenant %d completed %d/%d ops under heavy cross-tenant load, want >= %d (70%% of isolated throughput)",
				tn, got, lightOps, want)
		}
	}
}
