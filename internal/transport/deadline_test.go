package transport

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"sssdb/internal/proto"
)

// Two schedules built from the same seed must draw identical delay
// sequences — straggler experiments depend on exact reproducibility.
func TestDelayScheduleDeterministic(t *testing.T) {
	a := NewDelaySchedule(42, time.Millisecond, 4*time.Millisecond)
	b := NewDelaySchedule(42, time.Millisecond, 4*time.Millisecond)
	varied := false
	for i := 0; i < 256; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("draw %d: %v vs %v", i, da, db)
		}
		if da < time.Millisecond || da >= 5*time.Millisecond {
			t.Fatalf("draw %d: %v outside [base, base+jitter)", i, da)
		}
		if da != time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jittered schedule never varied")
	}
	c := NewDelaySchedule(43, time.Millisecond, 4*time.Millisecond)
	same := true
	for i := 0; i < 16; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds drew identical sequences")
	}
}

func TestDelayScheduleZeroJitter(t *testing.T) {
	s := NewDelaySchedule(1, 7*time.Millisecond, 0)
	for i := 0; i < 8; i++ {
		if d := s.Next(); d != 7*time.Millisecond {
			t.Fatalf("draw %d: %v", i, d)
		}
	}
}

// A call deadline nearer than the injected delay must park only until the
// deadline and then fail like a timeout — not sleep the full delay out.
func TestFaultyDelayRespectsDeadline(t *testing.T) {
	fc := NewFaulty(NewLocal(HandlerFunc(func(m proto.Message) proto.Message {
		return &proto.OKResponse{}
	})))
	defer fc.Close()
	fc.SetDelay(5 * time.Second)
	start := time.Now()
	_, err := fc.CallDeadline(&proto.PingRequest{}, time.Now().Add(30*time.Millisecond))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("parked %v despite 30ms deadline", el)
	}
	// Without a deadline the same call must still be interruptible by Crash
	// (covered elsewhere) and succeed once the delay is cleared.
	fc.SetDelay(0)
	if _, err := fc.Call(&proto.PingRequest{}); err != nil {
		t.Fatalf("after clearing delay: %v", err)
	}
}

// A schedule-driven delay obeys the deadline the same way.
func TestFaultyScheduleRespectsDeadline(t *testing.T) {
	fc := NewFaulty(NewLocal(HandlerFunc(func(m proto.Message) proto.Message {
		return &proto.OKResponse{}
	})))
	defer fc.Close()
	fc.SetDelaySchedule(NewDelaySchedule(7, 5*time.Second, 0))
	start := time.Now()
	err := fc.CallStreamDeadline(&proto.ScanRequest{}, time.Now().Add(30*time.Millisecond), func(*proto.RowsResponse) error {
		t.Fatal("chunk delivered past deadline")
		return nil
	})
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("parked %v despite 30ms deadline", el)
	}
}

// silentListener accepts connections and never speaks; DialWith succeeds
// (the TCP connect completes) while every call stalls.
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		var held []net.Conn
		defer func() {
			for _, c := range held {
				c.Close()
			}
		}()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			held = append(held, c)
		}
	}()
	return ln
}

// Close must abort a backoff park immediately: a closing client cannot sit
// out a busy-retry or redial backoff.
func TestWaitBackoffAbortsOnClose(t *testing.T) {
	conn, err := DialWith(silentListener(t).Addr().String(), DialConfig{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tc := conn.(*tcpConn)
	done := make(chan error, 1)
	go func() { done <- tc.waitBackoff(time.Minute, time.Time{}) }()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	conn.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waitBackoff did not abort on Close")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("abort took %v", el)
	}
}

// A deadline that would elapse during the backoff converts the park into
// an immediate deadline error.
func TestWaitBackoffRespectsDeadline(t *testing.T) {
	conn, err := DialWith(silentListener(t).Addr().String(), DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tc := conn.(*tcpConn)
	start := time.Now()
	if err := tc.waitBackoff(time.Minute, time.Now().Add(10*time.Millisecond)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("waited %v for an already-doomed backoff", el)
	}
}

// An end-to-end deadline bounds a call whose server never answers: the
// per-attempt timeout tightens to the remaining budget instead of running
// the full configured Timeout per redial attempt.
func TestCallDeadlineBoundsSilentServer(t *testing.T) {
	conn, err := DialWith(silentListener(t).Addr().String(), DialConfig{Timeout: 10 * time.Second, MaxRedials: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dc := conn.(DeadlineCaller)
	start := time.Now()
	_, err = dc.CallDeadline(&proto.PingRequest{}, time.Now().Add(100*time.Millisecond))
	if err == nil {
		t.Fatal("call against a silent server succeeded")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("call took %v despite 100ms deadline", el)
	}
}

// An already-expired deadline fails fast on the local loopback conn too.
func TestLocalConnExpiredDeadline(t *testing.T) {
	conn := NewLocal(HandlerFunc(func(m proto.Message) proto.Message {
		return &proto.OKResponse{}
	}))
	defer conn.Close()
	dc := conn.(DeadlineCaller)
	if _, err := dc.CallDeadline(&proto.PingRequest{}, time.Now().Add(-time.Second)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// A zero deadline stays unbounded.
	if _, err := dc.CallDeadline(&proto.PingRequest{}, time.Time{}); err != nil {
		t.Fatalf("zero deadline: %v", err)
	}
}
