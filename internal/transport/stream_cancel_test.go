package transport

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"sssdb/internal/proto"
)

// cancelObserver streams row chunks forever (well beyond any test budget)
// and records when its emit callback reports client cancellation. It is
// how a provider-side cursor experiences a LIMIT-satisfied client.
type cancelObserver struct {
	emitted  atomic.Int32
	canceled chan struct{} // closed when emit returns ErrStreamCanceled
	finished chan struct{} // closed when HandleStream returns
}

func (h *cancelObserver) Handle(req proto.Message) proto.Message {
	if _, ok := req.(*proto.PingRequest); ok {
		return &proto.OKResponse{}
	}
	return &proto.ErrorResponse{Code: proto.CodeBadRequest, Msg: "buffered path unexpected"}
}

func (h *cancelObserver) HandleStream(req proto.Message, emit func(*proto.RowsResponse) error) (bool, error) {
	if _, ok := req.(*proto.ScanRequest); !ok {
		return false, nil
	}
	defer close(h.finished)
	for i := 0; i < 1_000_000; i++ {
		chunk := &proto.RowsResponse{
			Columns: []string{"a"},
			Rows:    []proto.Row{{ID: uint64(i + 1), Cells: [][]byte{[]byte("cell")}}},
		}
		if err := emit(chunk); err != nil {
			if errors.Is(err, ErrStreamCanceled) {
				close(h.canceled)
			}
			return true, err
		}
		h.emitted.Add(1)
		// Pace the stream so the test exercises cancel-in-flight rather
		// than filling kernel socket buffers as fast as possible.
		time.Sleep(200 * time.Microsecond)
	}
	return true, nil
}

// TestStreamCancelReachesHandler proves the backpressure contract end to
// end over TCP: when the client's yield stops the stream (LIMIT satisfied),
// the transport sends a cancel frame and the provider-side handler observes
// ErrStreamCanceled from emit instead of producing the rest of the cursor.
func TestStreamCancelReachesHandler(t *testing.T) {
	h := &cancelObserver{canceled: make(chan struct{}), finished: make(chan struct{})}
	srv := newTestServer(t, h, ServerConfig{})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stop := errors.New("limit satisfied")
	got := 0
	err = CallStream(c, &proto.ScanRequest{Table: "t"}, func(rr *proto.RowsResponse) error {
		got += len(rr.Rows)
		if got >= 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("CallStream err %v, want the yield error", err)
	}
	select {
	case <-h.canceled:
	case <-time.After(10 * time.Second):
		t.Fatalf("handler never observed ErrStreamCanceled (emitted %d chunks)", h.emitted.Load())
	}
	<-h.finished
	if n := h.emitted.Load(); n >= 1_000_000 {
		t.Fatalf("handler ran to completion (%d chunks) despite cancel", n)
	}
	// The connection must remain usable for the next request: cancellation
	// is per-stream, not per-connection.
	if resp, err := c.Call(&proto.PingRequest{}); err != nil {
		t.Fatalf("Call after cancel: %v", err)
	} else if _, ok := resp.(*proto.OKResponse); !ok {
		t.Fatalf("Call after cancel returned %T", resp)
	}
}

// errorAfterHandler streams a few chunks then fails mid-stream.
type errorAfterHandler struct{ n int }

func (h *errorAfterHandler) Handle(req proto.Message) proto.Message {
	if _, ok := req.(*proto.PingRequest); ok {
		return &proto.OKResponse{}
	}
	return &proto.ErrorResponse{Code: proto.CodeBadRequest, Msg: "buffered path unexpected"}
}

func (h *errorAfterHandler) HandleStream(req proto.Message, emit func(*proto.RowsResponse) error) (bool, error) {
	if _, ok := req.(*proto.ScanRequest); !ok {
		return false, nil
	}
	for i := 0; i < h.n; i++ {
		chunk := &proto.RowsResponse{
			Columns: []string{"a"},
			Rows:    []proto.Row{{ID: uint64(i + 1), Cells: [][]byte{[]byte("cell")}}},
		}
		if err := emit(chunk); err != nil {
			return true, err
		}
	}
	return true, &proto.RemoteError{Code: proto.CodeInternal, Msg: "cursor torn"}
}

// TestStreamMidStreamError checks that a provider failing partway through a
// stream surfaces its error code to the caller as the final frame.
func TestStreamMidStreamError(t *testing.T) {
	srv := newTestServer(t, &errorAfterHandler{n: 4}, ServerConfig{})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got := 0
	err = CallStream(c, &proto.ScanRequest{Table: "t"}, func(rr *proto.RowsResponse) error {
		got += len(rr.Rows)
		return nil
	})
	var re *proto.RemoteError
	if !errors.As(err, &re) || re.Code != proto.CodeInternal {
		t.Fatalf("CallStream err %v, want RemoteError CodeInternal", err)
	}
	if got >= 4 {
		// The final (held-back) chunk is discarded on error; at most n-1
		// chunks can have been yielded.
		t.Fatalf("yielded %d rows, want < 4", got)
	}
	if _, err := c.Call(&proto.PingRequest{}); err != nil {
		t.Fatalf("Call after stream error: %v", err)
	}
}
