package sql

import (
	"errors"
	"reflect"
	"testing"
)

func mustParse(t *testing.T, q string) Statement {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE employees (
		name VARCHAR(10),
		salary DECIMAL(2),
		dept INT,
		photo BLOB
	)`)
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	want := &CreateTable{
		Name: "employees",
		Columns: []ColumnDef{
			{Name: "name", Type: TypeVarchar, Arg: 10},
			{Name: "salary", Type: TypeDecimal, Arg: 2},
			{Name: "dept", Type: TypeInt},
			{Name: "photo", Type: TypeBlob},
		},
	}
	if !reflect.DeepEqual(ct, want) {
		t.Fatalf("got %#v", ct)
	}
}

func TestParseCreatePublicTable(t *testing.T) {
	stmt := mustParse(t, `CREATE PUBLIC TABLE restaurants (name VARCHAR(10), zip INT)`)
	ct := stmt.(*CreateTable)
	if !ct.Public || ct.Name != "restaurants" || len(ct.Columns) != 2 {
		t.Fatalf("got %#v", ct)
	}
}

func TestParseDrop(t *testing.T) {
	stmt := mustParse(t, "DROP TABLE employees;")
	if dt := stmt.(*DropTable); dt.Name != "employees" {
		t.Fatalf("got %#v", dt)
	}
}

func TestParseInsert(t *testing.T) {
	stmt := mustParse(t, `INSERT INTO employees VALUES ('John', 40000.00, 7), ('Jane', -1200, 8)`)
	ins := stmt.(*Insert)
	want := &Insert{
		Table: "employees",
		Rows: [][]Literal{
			{{IsString: true, Text: "John"}, {Text: "40000.00"}, {Text: "7"}},
			{{IsString: true, Text: "Jane"}, {Text: "-1200"}, {Text: "8"}},
		},
	}
	if !reflect.DeepEqual(ins, want) {
		t.Fatalf("got %#v", ins)
	}
}

func TestParseSelectStar(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM employees WHERE name = 'John'`)
	sel := stmt.(*Select)
	if !sel.Items[0].Star || sel.Table != "employees" {
		t.Fatalf("got %#v", sel)
	}
	if len(sel.Where) != 1 || sel.Where[0].Op != OpEq || sel.Where[0].Lo.Text != "John" || !sel.Where[0].Lo.IsString {
		t.Fatalf("where: %#v", sel.Where)
	}
}

func TestParseSelectRangeAndConjunction(t *testing.T) {
	stmt := mustParse(t, `SELECT name, salary FROM employees
		WHERE salary BETWEEN 10000 AND 40000 AND dept = 7 LIMIT 50`)
	sel := stmt.(*Select)
	if len(sel.Items) != 2 || sel.Items[0].Col.Name != "name" || sel.Items[1].Col.Name != "salary" {
		t.Fatalf("items: %#v", sel.Items)
	}
	if len(sel.Where) != 2 {
		t.Fatalf("where: %#v", sel.Where)
	}
	if sel.Where[0].Op != OpBetween || sel.Where[0].Lo.Text != "10000" || sel.Where[0].Hi.Text != "40000" {
		t.Fatalf("between: %#v", sel.Where[0])
	}
	if sel.Where[1].Op != OpEq || sel.Where[1].Col.Name != "dept" {
		t.Fatalf("eq: %#v", sel.Where[1])
	}
	if sel.Limit != 50 {
		t.Fatalf("limit: %d", sel.Limit)
	}
}

func TestParseSelectComparisons(t *testing.T) {
	ops := map[string]CompareOp{
		"=": OpEq, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	}
	for text, op := range ops {
		sel := mustParse(t, "SELECT * FROM t WHERE x "+text+" 5").(*Select)
		if sel.Where[0].Op != op {
			t.Errorf("op %q parsed as %v", text, sel.Where[0].Op)
		}
	}
}

func TestParseAggregates(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary), MEDIAN(salary) FROM employees WHERE name = 'John'`)
	sel := stmt.(*Select)
	wantFns := []AggFunc{AggCount, AggSum, AggAvg, AggMin, AggMax, AggMedian}
	if len(sel.Items) != len(wantFns) {
		t.Fatalf("items: %d", len(sel.Items))
	}
	for i, fn := range wantFns {
		if sel.Items[i].Agg != fn {
			t.Errorf("item %d: %v, want %v", i, sel.Items[i].Agg, fn)
		}
	}
	if !sel.Items[0].Star {
		t.Error("COUNT(*) star flag missing")
	}
	if sel.Items[1].Col.Name != "salary" {
		t.Errorf("SUM column: %v", sel.Items[1].Col)
	}
}

func TestParseJoin(t *testing.T) {
	stmt := mustParse(t, `SELECT employees.salary, managers.ManagerUserName
		FROM employees JOIN managers ON employees.EID = managers.EID
		WHERE employees.dept = 3`)
	sel := stmt.(*Select)
	if sel.Join == nil || sel.Join.Table != "managers" {
		t.Fatalf("join: %#v", sel.Join)
	}
	if sel.Join.Left.Table != "employees" || sel.Join.Left.Name != "EID" {
		t.Fatalf("join left: %#v", sel.Join.Left)
	}
	if sel.Join.Right.Table != "managers" || sel.Join.Right.Name != "EID" {
		t.Fatalf("join right: %#v", sel.Join.Right)
	}
	if sel.Items[0].Col.Table != "employees" || sel.Items[1].Col.Table != "managers" {
		t.Fatalf("items: %#v", sel.Items)
	}
}

func TestParseLikePrefix(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM employees WHERE name LIKE 'AB%'`)
	sel := stmt.(*Select)
	if sel.Where[0].Op != OpLikePrefix || sel.Where[0].Lo.Text != "AB" {
		t.Fatalf("like: %#v", sel.Where[0])
	}
	// Non-prefix patterns are rejected.
	for _, bad := range []string{"'%AB'", "'A%B'", "'AB'", "5"} {
		if _, err := Parse("SELECT * FROM t WHERE name LIKE " + bad); err == nil {
			t.Errorf("LIKE %s accepted", bad)
		}
	}
}

func TestParseGroupBy(t *testing.T) {
	sel := mustParse(t, `SELECT dept, COUNT(*), SUM(salary) FROM employees
		WHERE salary > 0 GROUP BY dept LIMIT 5`).(*Select)
	if sel.GroupBy == nil || sel.GroupBy.Name != "dept" {
		t.Fatalf("group by: %#v", sel.GroupBy)
	}
	if sel.Limit != 5 || len(sel.Where) != 1 {
		t.Fatalf("clauses around GROUP BY mis-parsed: %#v", sel)
	}
	// Qualified group column.
	sel = mustParse(t, `SELECT COUNT(*) FROM t GROUP BY t.g`).(*Select)
	if sel.GroupBy.Table != "t" || sel.GroupBy.Name != "g" {
		t.Fatalf("qualified group by: %#v", sel.GroupBy)
	}
	// Errors.
	for _, bad := range []string{
		"SELECT COUNT(*) FROM t GROUP dept",
		"SELECT COUNT(*) FROM t GROUP BY",
		"SELECT COUNT(*) FROM t GROUP BY 5",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParseOrderBy(t *testing.T) {
	sel := mustParse(t, `SELECT a FROM t WHERE a > 1 ORDER BY a DESC LIMIT 3`).(*Select)
	if sel.OrderBy == nil || sel.OrderBy.Col.Name != "a" || !sel.OrderBy.Desc {
		t.Fatalf("order by: %#v", sel.OrderBy)
	}
	if sel.Limit != 3 {
		t.Fatalf("limit after order by: %d", sel.Limit)
	}
	sel = mustParse(t, `SELECT a FROM t ORDER BY t.a ASC`).(*Select)
	if sel.OrderBy.Desc || sel.OrderBy.Col.Table != "t" {
		t.Fatalf("asc qualified: %#v", sel.OrderBy)
	}
	sel = mustParse(t, `SELECT a FROM t ORDER BY a`).(*Select)
	if sel.OrderBy.Desc {
		t.Fatal("implicit direction should be ASC")
	}
	for _, bad := range []string{
		"SELECT a FROM t ORDER a",
		"SELECT a FROM t ORDER BY",
		"SELECT a FROM t ORDER BY 5",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParseVerified(t *testing.T) {
	sel := mustParse(t, `SELECT * FROM t WHERE x BETWEEN 1 AND 2 VERIFIED`).(*Select)
	if !sel.Verified {
		t.Fatal("VERIFIED not parsed")
	}
}

func TestParseUpdate(t *testing.T) {
	stmt := mustParse(t, `UPDATE employees SET salary = 45000.00, dept = 9 WHERE name = 'John'`)
	upd := stmt.(*Update)
	if upd.Table != "employees" || len(upd.Set) != 2 {
		t.Fatalf("got %#v", upd)
	}
	if upd.Set[0].Col != "salary" || upd.Set[0].Value.Text != "45000.00" {
		t.Fatalf("set[0]: %#v", upd.Set[0])
	}
	if len(upd.Where) != 1 {
		t.Fatalf("where: %#v", upd.Where)
	}
}

func TestParseDelete(t *testing.T) {
	stmt := mustParse(t, `DELETE FROM employees WHERE salary > 100000`)
	del := stmt.(*Delete)
	if del.Table != "employees" || len(del.Where) != 1 || del.Where[0].Op != OpGt {
		t.Fatalf("got %#v", del)
	}
	// No WHERE deletes everything.
	del = mustParse(t, `DELETE FROM employees`).(*Delete)
	if del.Where != nil {
		t.Fatalf("got %#v", del)
	}
}

func TestParseStringEscapes(t *testing.T) {
	ins := mustParse(t, `INSERT INTO t VALUES ('O''Brien')`).(*Insert)
	if ins.Rows[0][0].Text != "O'Brien" {
		t.Fatalf("got %q", ins.Rows[0][0].Text)
	}
}

func TestParseComments(t *testing.T) {
	sel := mustParse(t, "SELECT * -- output everything\nFROM t").(*Select)
	if sel.Table != "t" {
		t.Fatalf("got %#v", sel)
	}
}

func TestParseNegativeAndDecimalLiterals(t *testing.T) {
	ins := mustParse(t, `INSERT INTO t VALUES (-5, +3, 2.75, .5)`).(*Insert)
	texts := []string{"-5", "3", "2.75", ".5"}
	for i, want := range texts {
		if ins.Rows[0][i].Text != want {
			t.Errorf("literal %d: %q, want %q", i, ins.Rows[0][i].Text, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE x",
		"SELECT * FROM t WHERE x BETWEEN 1",
		"SELECT * FROM t WHERE x BETWEEN 1 2",
		"SELECT * FROM t LIMIT x",
		"SELECT SUM(*) FROM t",
		"CREATE TABLE t",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a)",
		"CREATE TABLE t (a VARCHAR)",
		"CREATE TABLE t (a VARCHAR(x))",
		"CREATE TABLE t (a INT",
		"INSERT t VALUES (1)",
		"INSERT INTO t VALUES 1",
		"INSERT INTO t VALUES ()",
		"INSERT INTO t VALUES (1",
		"UPDATE t SET",
		"UPDATE t SET a",
		"UPDATE t SET a = ",
		"DELETE t",
		"DROP t",
		"SELECT * FROM t extra",
		"SELECT * FROM t WHERE x != 5",
		"SELECT * FROM t JOIN u ON a.b",
		"SELECT * FROM t WHERE x = 'unterminated",
		"SELECT * FROM t WHERE x = 1.2.3",
		"SELECT @ FROM t",
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q) error is %T, want *SyntaxError", q, err)
			}
		}
	}
}

func TestStringers(t *testing.T) {
	if TypeInt.String() != "INT" || TypeDecimal.String() != "DECIMAL" ||
		TypeVarchar.String() != "VARCHAR" || TypeBlob.String() != "BLOB" {
		t.Error("TypeName strings")
	}
	if OpBetween.String() != "BETWEEN" || OpEq.String() != "=" || OpLikePrefix.String() != "LIKE" {
		t.Error("CompareOp strings")
	}
	if AggMedian.String() != "MEDIAN" || AggNone.String() != "" {
		t.Error("AggFunc strings")
	}
	if (ColumnRef{Table: "t", Name: "c"}).String() != "t.c" || (ColumnRef{Name: "c"}).String() != "c" {
		t.Error("ColumnRef strings")
	}
}

func BenchmarkParseSelect(b *testing.B) {
	q := `SELECT name, salary FROM employees WHERE salary BETWEEN 10000 AND 40000 AND dept = 7 LIMIT 50`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseTransactionKeywords(t *testing.T) {
	cases := []struct {
		q    string
		want Statement
	}{
		{`BEGIN`, &BeginTx{}},
		{`begin transaction`, &BeginTx{}},
		{`BEGIN WORK`, &BeginTx{}},
		{`COMMIT`, &CommitTx{}},
		{`COMMIT TRANSACTION`, &CommitTx{}},
		{`commit work`, &CommitTx{}},
		{`ROLLBACK`, &RollbackTx{}},
		{`ROLLBACK TRANSACTION`, &RollbackTx{}},
		{`ROLLBACK WORK`, &RollbackTx{}},
	}
	for _, c := range cases {
		stmt, err := Parse(c.q)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.q, err)
			continue
		}
		if reflect.TypeOf(stmt) != reflect.TypeOf(c.want) {
			t.Errorf("Parse(%q) = %T, want %T", c.q, stmt, c.want)
		}
	}
	// Trailing garbage is still rejected.
	for _, q := range []string{`BEGIN TRANSACTION NOW`, `COMMIT 5`, `ROLLBACK WORK PLEASE`} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want syntax error", q)
		}
	}
}
