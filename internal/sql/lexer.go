// Package sql implements the query language of the data source front end:
// a lexer, recursive-descent parser, and AST for the SQL dialect the paper's
// examples use — CREATE TABLE, INSERT, SELECT with exact-match, range,
// LIKE-prefix and BETWEEN predicates, aggregates (SUM, AVG, COUNT, MIN,
// MAX, MEDIAN), two-table equijoins, UPDATE, and DELETE.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // ( ) , . * =
	TokOp     // = < > <= >= !=
)

// Token is one lexical unit with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// keywords of the dialect; stored upper-case.
var keywords = map[string]bool{
	"CREATE": true, "PUBLIC": true, "TABLE": true, "DROP": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"BETWEEN": true, "LIKE": true, "JOIN": true, "ON": true,
	"UPDATE": true, "SET": true, "DELETE": true, "LIMIT": true,
	"GROUP": true, "BY": true, "ORDER": true, "ASC": true, "DESC": true,
	"HAVING": true, "EXPLAIN": true, "IN": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"MEDIAN": true,
	"INT":    true, "DECIMAL": true, "VARCHAR": true, "BLOB": true,
	"VERIFIED": true,
	"BEGIN":    true, "COMMIT": true, "ROLLBACK": true,
	"TRANSACTION": true, "WORK": true,
}

// SyntaxError reports a lexical or grammatical problem with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: position %d: %s", e.Pos, e.Msg)
}

func errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes the input.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n {
				d := input[i]
				if d == '.' {
					if seenDot {
						return nil, errorf(i, "malformed number")
					}
					seenDot = true
					i++
					continue
				}
				if d < '0' || d > '9' {
					break
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					// Doubled quote escapes a quote.
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, errorf(start, "unterminated string literal")
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '<' || c == '>' || c == '!':
			start := i
			op := string(c)
			i++
			if i < n && input[i] == '=' {
				op += "="
				i++
			}
			if op == "!" {
				return nil, errorf(start, "unexpected '!'")
			}
			toks = append(toks, Token{Kind: TokOp, Text: op, Pos: start})
		case c == '=':
			toks = append(toks, Token{Kind: TokOp, Text: "=", Pos: i})
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*' || c == '-' || c == '+':
			toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: i})
			i++
		case c == ';':
			// Statement terminator, ignored at the end.
			i++
		default:
			return nil, errorf(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '#' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
