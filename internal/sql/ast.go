package sql

import "fmt"

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
}

// TypeName enumerates client-level column types.
type TypeName int

// Column types of the dialect.
const (
	// TypeInt is a signed integer, dual-shared (OPP + field).
	TypeInt TypeName = iota + 1
	// TypeDecimal is a fixed-point decimal with a scale, dual-shared.
	TypeDecimal
	// TypeVarchar is a bounded string encoded to an order-preserving
	// number (paper Sec. V-B), dual-shared.
	TypeVarchar
	// TypeBlob is an unqueryable payload: AES-GCM encrypted client-side for
	// private tables, stored raw for public ones.
	TypeBlob
)

func (t TypeName) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeDecimal:
		return "DECIMAL"
	case TypeVarchar:
		return "VARCHAR"
	case TypeBlob:
		return "BLOB"
	default:
		return fmt.Sprintf("TypeName(%d)", int(t))
	}
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type TypeName
	// Arg carries VARCHAR width or DECIMAL scale.
	Arg int
}

// CreateTable is CREATE [PUBLIC] TABLE name (col TYPE, ...).
type CreateTable struct {
	Name    string
	Public  bool
	Columns []ColumnDef
}

func (*CreateTable) stmt() {}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

func (*DropTable) stmt() {}

// Literal is a typed constant from the query text.
type Literal struct {
	// IsString distinguishes 'text' from numeric literals.
	IsString bool
	// Text holds the raw literal (for numbers, including sign/decimal dot).
	Text string
}

// Insert is INSERT INTO name VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]Literal
}

func (*Insert) stmt() {}

// CompareOp enumerates predicate comparisons.
type CompareOp int

// Predicate operators.
const (
	OpEq CompareOp = iota + 1
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween
	OpLikePrefix
	OpIn
)

func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "BETWEEN"
	case OpLikePrefix:
		return "LIKE"
	case OpIn:
		return "IN"
	default:
		return fmt.Sprintf("CompareOp(%d)", int(op))
	}
}

// ColumnRef names a column, optionally table-qualified (joins).
type ColumnRef struct {
	Table string // empty when unqualified
	Name  string
}

func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Predicate is one conjunct of a WHERE clause: col OP literal(s).
type Predicate struct {
	Col CompareColumn
	Op  CompareOp
	Lo  Literal
	Hi  Literal // BETWEEN only
	// List holds the IN members (OpIn only).
	List []Literal
}

// CompareColumn aliases ColumnRef for readability in predicates.
type CompareColumn = ColumnRef

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
	AggMedian
)

func (f AggFunc) String() string {
	switch f {
	case AggNone:
		return ""
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggMedian:
		return "MEDIAN"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// SelectItem is one output column: either a plain column reference, `*`,
// or an aggregate over a column (or `*` for COUNT).
type SelectItem struct {
	Star bool
	Agg  AggFunc
	Col  ColumnRef
}

// JoinClause is JOIN table ON left = right.
type JoinClause struct {
	Table string
	Left  ColumnRef
	Right ColumnRef
}

// Select is SELECT items FROM table [JOIN ...] [WHERE p AND p ...]
// [GROUP BY col] [LIMIT n] [VERIFIED].
type Select struct {
	Items []SelectItem
	Table string
	Join  *JoinClause
	Where []Predicate
	// GroupBy names the grouping column (nil when absent). Groups align
	// across providers because share order equals value order.
	GroupBy *ColumnRef
	// Having filters groups by aggregate values (GROUP BY only).
	Having []HavingPredicate
	// OrderBy names the sort column (nil = provider/index order).
	OrderBy *OrderClause
	Limit   uint64
	// Verified requests Merkle completeness verification of the scan.
	Verified bool
}

func (*Select) stmt() {}

// HavingPredicate is one HAVING conjunct: agg(col) OP literal(s).
type HavingPredicate struct {
	Item SelectItem
	Op   CompareOp
	Lo   Literal
	Hi   Literal // BETWEEN only
}

// OrderClause is ORDER BY col [ASC|DESC].
type OrderClause struct {
	Col  ColumnRef
	Desc bool
}

// Assignment is one SET col = literal.
type Assignment struct {
	Col   string
	Value Literal
}

// Update is UPDATE table SET a = v [, ...] [WHERE ...].
type Update struct {
	Table string
	Set   []Assignment
	Where []Predicate
}

func (*Update) stmt() {}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table string
	Where []Predicate
}

func (*Delete) stmt() {}

// Explain is EXPLAIN <select>: it asks the client to describe how the
// statement would execute (share rewriting, push-down decisions, quorum)
// without running it.
type Explain struct {
	Stmt *Select
}

func (*Explain) stmt() {}

// BeginTx is BEGIN [TRANSACTION|WORK]: start a multi-statement transaction.
type BeginTx struct{}

func (*BeginTx) stmt() {}

// CommitTx is COMMIT [TRANSACTION|WORK]: run the transaction's two-phase
// commit across the provider fleet.
type CommitTx struct{}

func (*CommitTx) stmt() {}

// RollbackTx is ROLLBACK [TRANSACTION|WORK]: discard the transaction's
// buffered statements.
type RollbackTx struct{}

func (*RollbackTx) stmt() {}
