package sql

import (
	mrand "math/rand"
	"strings"
	"testing"
)

// Parse must never panic, whatever the input. This randomized test mutates
// valid statements and also feeds pure noise.
func TestParseNeverPanics(t *testing.T) {
	seeds := []string{
		`SELECT name, salary FROM employees WHERE salary BETWEEN 10000 AND 40000 AND dept = 7 LIMIT 50 VERIFIED`,
		`CREATE PUBLIC TABLE t (a VARCHAR(10), b DECIMAL(2), c INT, d BLOB)`,
		`INSERT INTO t VALUES ('x', 1.5, -3, 'p'), ('y', 2.5, 4, 'q')`,
		`SELECT employees.a, m.b FROM employees JOIN m ON employees.k = m.k`,
		`UPDATE t SET a = 'z', b = 9.99 WHERE c >= 0`,
		`DELETE FROM t WHERE a LIKE 'AB%'`,
		`SELECT COUNT(*), SUM(x), MEDIAN(y) FROM t`,
		`SELECT g, COUNT(*) FROM t GROUP BY g HAVING COUNT(*) >= 2 AND SUM(v) BETWEEN 1 AND 9`,
		`SELECT a FROM t WHERE v IN (1, -2, 3.5) ORDER BY a DESC LIMIT 7`,
		`EXPLAIN SELECT a FROM t WHERE b IN (1, 2) AND c LIKE 'X%'`,
	}
	rng := mrand.New(mrand.NewSource(2024))
	alphabet := `abcXYZ019'"%().,*<>=- ;` + "\t\n"
	for trial := 0; trial < 20_000; trial++ {
		var input string
		if trial%3 == 0 {
			// Pure noise.
			n := rng.Intn(60)
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
			input = sb.String()
		} else {
			// Mutate a valid statement: random splice, delete, or swap.
			base := []byte(seeds[rng.Intn(len(seeds))])
			for m := 0; m < 1+rng.Intn(4); m++ {
				if len(base) == 0 {
					break
				}
				switch rng.Intn(3) {
				case 0:
					base[rng.Intn(len(base))] = alphabet[rng.Intn(len(alphabet))]
				case 1:
					i := rng.Intn(len(base))
					base = append(base[:i], base[i+1:]...)
				case 2:
					i := rng.Intn(len(base))
					base = append(base[:i], append([]byte{alphabet[rng.Intn(len(alphabet))]}, base[i:]...)...)
				}
			}
			input = string(base)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", input, r)
				}
			}()
			_, _ = Parse(input)
		}()
	}
}

// Lex positions must be within the input, so error messages point at real
// offsets.
func TestLexPositions(t *testing.T) {
	input := `SELECT a FROM t WHERE b = 'str' AND c <= 42.5`
	toks, err := Lex(input)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Pos < 0 || tok.Pos > len(input) {
			t.Fatalf("token %q at impossible position %d", tok.Text, tok.Pos)
		}
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Fatal("missing EOF token")
	}
}

// Keywords are case-insensitive; identifiers keep their case.
func TestCaseInsensitiveKeywords(t *testing.T) {
	stmt, err := Parse(`select Name from Employees where Salary between 1 and 2`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*Select)
	if sel.Table != "Employees" || sel.Items[0].Col.Name != "Name" {
		t.Fatalf("identifier case mangled: %#v", sel)
	}
	if sel.Where[0].Col.Name != "Salary" || sel.Where[0].Op != OpBetween {
		t.Fatalf("where: %#v", sel.Where)
	}
}

// Statements survive semicolons and surrounding whitespace.
func TestTrailingSemicolonAndWhitespace(t *testing.T) {
	for _, q := range []string{
		"SELECT a FROM t;",
		"  SELECT a FROM t  ;  ",
		"\n\tSELECT a FROM t\n;\n",
	} {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}
