package sql

import (
	"strconv"
	"strings"
)

// Parse parses a single SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, errorf(p.cur().Pos, "unexpected %q after statement", p.cur().Text)
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token { return p.toks[p.pos] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text, when given).
func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

// eat consumes the current token if it matches.
func (p *parser) eat(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.advance(), nil
	}
	want := text
	if want == "" {
		want = [...]string{"EOF", "identifier", "keyword", "number", "string", "symbol", "operator"}[kind]
	}
	return Token{}, errorf(p.cur().Pos, "expected %s, found %q", want, p.cur().Text)
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return "", err
	}
	return t.Text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(TokKeyword, "EXPLAIN"):
		p.advance()
		if !p.at(TokKeyword, "SELECT") {
			return nil, errorf(p.cur().Pos, "EXPLAIN supports SELECT statements")
		}
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner.(*Select)}, nil
	case p.at(TokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(TokKeyword, "DROP"):
		return p.parseDrop()
	case p.at(TokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(TokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(TokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(TokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(TokKeyword, "BEGIN"):
		p.advance()
		p.eatTxNoise()
		return &BeginTx{}, nil
	case p.at(TokKeyword, "COMMIT"):
		p.advance()
		p.eatTxNoise()
		return &CommitTx{}, nil
	case p.at(TokKeyword, "ROLLBACK"):
		p.advance()
		p.eatTxNoise()
		return &RollbackTx{}, nil
	default:
		return nil, errorf(p.cur().Pos, "expected a statement, found %q", p.cur().Text)
	}
}

// eatTxNoise consumes the optional TRANSACTION/WORK keyword after
// BEGIN/COMMIT/ROLLBACK.
func (p *parser) eatTxNoise() {
	if !p.eat(TokKeyword, "TRANSACTION") {
		p.eat(TokKeyword, "WORK")
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	public := p.eat(TokKeyword, "PUBLIC")
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		def := ColumnDef{Name: colName}
		typeTok := p.cur()
		switch {
		case p.eat(TokKeyword, "INT"):
			def.Type = TypeInt
		case p.eat(TokKeyword, "DECIMAL"):
			def.Type = TypeDecimal
			arg, err := p.parenInt()
			if err != nil {
				return nil, err
			}
			def.Arg = arg
		case p.eat(TokKeyword, "VARCHAR"):
			def.Type = TypeVarchar
			arg, err := p.parenInt()
			if err != nil {
				return nil, err
			}
			def.Arg = arg
		case p.eat(TokKeyword, "BLOB"):
			def.Type = TypeBlob
		default:
			return nil, errorf(typeTok.Pos, "expected a column type, found %q", typeTok.Text)
		}
		cols = append(cols, def)
		if p.eat(TokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Public: public, Columns: cols}, nil
}

// parenInt parses "( number )" returning the integer.
func (p *parser) parenInt() (int, error) {
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return 0, err
	}
	t, err := p.expect(TokNumber, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, errorf(t.Pos, "expected an integer, found %q", t.Text)
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return 0, err
	}
	return v, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	if _, err := p.expect(TokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if _, err := p.expect(TokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Literal
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Literal
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, lit)
			if p.eat(TokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.eat(TokSymbol, ",") {
			continue
		}
		break
	}
	return &Insert{Table: table, Rows: rows}, nil
}

// literal parses a string or (possibly signed) numeric literal.
func (p *parser) literal() (Literal, error) {
	t := p.cur()
	switch {
	case t.Kind == TokString:
		p.advance()
		return Literal{IsString: true, Text: t.Text}, nil
	case t.Kind == TokNumber:
		p.advance()
		return Literal{Text: t.Text}, nil
	case t.Kind == TokSymbol && (t.Text == "-" || t.Text == "+"):
		p.advance()
		num, err := p.expect(TokNumber, "")
		if err != nil {
			return Literal{}, err
		}
		text := num.Text
		if t.Text == "-" {
			text = "-" + text
		}
		return Literal{Text: text}, nil
	default:
		return Literal{}, errorf(t.Pos, "expected a literal, found %q", t.Text)
	}
}

// columnRef parses ident or table.ident.
func (p *parser) columnRef() (ColumnRef, error) {
	first, err := p.ident()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.eat(TokSymbol, ".") {
		second, err := p.ident()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: first, Name: second}, nil
	}
	return ColumnRef{Name: first}, nil
}

func (p *parser) parseSelect() (Statement, error) {
	p.advance() // SELECT
	sel := &Select{}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.eat(TokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = table
	if p.eat(TokKeyword, "JOIN") {
		jt, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, err
		}
		left, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		right, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		sel.Join = &JoinClause{Table: jt, Left: left, Right: right}
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	sel.Where = where
	if p.eat(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		sel.GroupBy = &col
		if p.eat(TokKeyword, "HAVING") {
			for {
				hp, err := p.havingPredicate()
				if err != nil {
					return nil, err
				}
				sel.Having = append(sel.Having, hp)
				if p.eat(TokKeyword, "AND") {
					continue
				}
				break
			}
		}
	}
	if p.eat(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		oc := &OrderClause{Col: col}
		if p.eat(TokKeyword, "DESC") {
			oc.Desc = true
		} else {
			p.eat(TokKeyword, "ASC")
		}
		sel.OrderBy = oc
	}
	if p.eat(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseUint(t.Text, 10, 64)
		if err != nil {
			return nil, errorf(t.Pos, "bad LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	if p.eat(TokKeyword, "VERIFIED") {
		sel.Verified = true
	}
	return sel, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.cur()
	if p.eat(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	aggs := map[string]AggFunc{
		"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg,
		"MIN": AggMin, "MAX": AggMax, "MEDIAN": AggMedian,
	}
	if t.Kind == TokKeyword {
		if fn, ok := aggs[t.Text]; ok {
			p.advance()
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: fn}
			if p.eat(TokSymbol, "*") {
				if fn != AggCount {
					return SelectItem{}, errorf(t.Pos, "%s(*) is only valid for COUNT", fn)
				}
				item.Star = true
			} else {
				col, err := p.columnRef()
				if err != nil {
					return SelectItem{}, err
				}
				item.Col = col
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			return item, nil
		}
		return SelectItem{}, errorf(t.Pos, "unexpected keyword %q in select list", t.Text)
	}
	col, err := p.columnRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

func (p *parser) parseWhere() ([]Predicate, error) {
	if !p.eat(TokKeyword, "WHERE") {
		return nil, nil
	}
	var preds []Predicate
	for {
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		if p.eat(TokKeyword, "AND") {
			continue
		}
		break
	}
	return preds, nil
}

func (p *parser) predicate() (Predicate, error) {
	col, err := p.columnRef()
	if err != nil {
		return Predicate{}, err
	}
	t := p.cur()
	switch {
	case t.Kind == TokOp:
		p.advance()
		var op CompareOp
		switch t.Text {
		case "=":
			op = OpEq
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			return Predicate{}, errorf(t.Pos, "unsupported operator %q", t.Text)
		}
		lit, err := p.literal()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Col: col, Op: op, Lo: lit}, nil
	case t.Kind == TokKeyword && t.Text == "BETWEEN":
		p.advance()
		lo, err := p.literal()
		if err != nil {
			return Predicate{}, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return Predicate{}, err
		}
		hi, err := p.literal()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Col: col, Op: OpBetween, Lo: lo, Hi: hi}, nil
	case t.Kind == TokKeyword && t.Text == "IN":
		p.advance()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return Predicate{}, err
		}
		var list []Literal
		for {
			lit, err := p.literal()
			if err != nil {
				return Predicate{}, err
			}
			list = append(list, lit)
			if p.eat(TokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return Predicate{}, err
		}
		return Predicate{Col: col, Op: OpIn, List: list}, nil
	case t.Kind == TokKeyword && t.Text == "LIKE":
		p.advance()
		lit, err := p.literal()
		if err != nil {
			return Predicate{}, err
		}
		if !lit.IsString {
			return Predicate{}, errorf(t.Pos, "LIKE needs a string pattern")
		}
		if !strings.HasSuffix(lit.Text, "%") || strings.Contains(strings.TrimSuffix(lit.Text, "%"), "%") {
			return Predicate{}, errorf(t.Pos, "only prefix patterns ('AB%%') are supported")
		}
		lit.Text = strings.TrimSuffix(lit.Text, "%")
		return Predicate{Col: col, Op: OpLikePrefix, Lo: lit}, nil
	default:
		return Predicate{}, errorf(t.Pos, "expected a comparison, found %q", t.Text)
	}
}

// havingPredicate parses one HAVING conjunct: agg(col) OP literal, or
// agg(col) BETWEEN lo AND hi.
func (p *parser) havingPredicate() (HavingPredicate, error) {
	start := p.cur()
	item, err := p.selectItem()
	if err != nil {
		return HavingPredicate{}, err
	}
	if item.Agg == AggNone {
		return HavingPredicate{}, errorf(start.Pos, "HAVING requires an aggregate, found %q", start.Text)
	}
	t := p.cur()
	switch {
	case t.Kind == TokOp:
		p.advance()
		var op CompareOp
		switch t.Text {
		case "=":
			op = OpEq
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			return HavingPredicate{}, errorf(t.Pos, "unsupported operator %q in HAVING", t.Text)
		}
		lit, err := p.literal()
		if err != nil {
			return HavingPredicate{}, err
		}
		return HavingPredicate{Item: item, Op: op, Lo: lit}, nil
	case t.Kind == TokKeyword && t.Text == "BETWEEN":
		p.advance()
		lo, err := p.literal()
		if err != nil {
			return HavingPredicate{}, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return HavingPredicate{}, err
		}
		hi, err := p.literal()
		if err != nil {
			return HavingPredicate{}, err
		}
		return HavingPredicate{Item: item, Op: OpBetween, Lo: lo, Hi: hi}, nil
	default:
		return HavingPredicate{}, errorf(t.Pos, "expected a comparison in HAVING, found %q", t.Text)
	}
}

func (p *parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "SET"); err != nil {
		return nil, err
	}
	var assigns []Assignment
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		assigns = append(assigns, Assignment{Col: col, Value: lit})
		if p.eat(TokSymbol, ",") {
			continue
		}
		break
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	return &Update{Table: table, Set: assigns, Where: where}, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	where, err := p.parseWhere()
	if err != nil {
		return nil, err
	}
	return &Delete{Table: table, Where: where}, nil
}
