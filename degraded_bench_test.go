package sssdb

// Degraded-write benchmarks: the hinted-handoff path (one provider
// crashed, WriteQuorum 3 of 4) against the healthy 4-ack baseline.
//
//	go test -bench BenchmarkDegradedInsert -benchtime 100x .

import (
	"testing"
)

func BenchmarkDegradedInsert(b *testing.B) {
	for _, mode := range []struct {
		name  string
		crash bool
	}{{"healthy", false}, {"one-provider-down", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cluster, err := OpenLocal(4, Options{
				K: 2, WriteQuorum: 3, MasterKey: []byte("bench"),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { cluster.Close() })
			if _, err := cluster.Client.Exec(`CREATE TABLE ops (v INT, w INT)`); err != nil {
				b.Fatal(err)
			}
			if mode.crash {
				cluster.CrashProvider(0)
			}
			rows := seedRows(b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Client.InsertValues("ops", [][]Value{
					{rows[i][1], rows[i][2]},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
