package sssdb_test

import (
	"fmt"
	"log"

	"sssdb"
)

// The basic flow: outsource a table as shares across three providers and
// query it back with a range predicate the providers evaluate in share
// space.
func Example() {
	cluster, err := sssdb.OpenLocal(3, sssdb.Options{
		K:         2,
		MasterKey: []byte("example master key"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client

	db.Exec(`CREATE TABLE employees (name VARCHAR(8), salary INT)`)
	db.Exec(`INSERT INTO employees VALUES ('JOHN', 42000), ('ALICE', 55000), ('BOB', 38000)`)

	res, err := db.Exec(`SELECT name, salary FROM employees
		WHERE salary BETWEEN 40000 AND 60000 ORDER BY salary`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s %s\n", row[0].Format(), row[1].Format())
	}
	// Output:
	// JOHN 42000
	// ALICE 55000
}

// Aggregates run at the providers over shares: SUM partials are sums of
// Shamir shares, valid by linearity; the client interpolates the total.
func Example_aggregates() {
	cluster, err := sssdb.OpenLocal(3, sssdb.Options{K: 2, MasterKey: []byte("agg key")})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client

	db.Exec(`CREATE TABLE sales (region VARCHAR(6), amount INT)`)
	db.Exec(`INSERT INTO sales VALUES ('EAST', 100), ('EAST', 200), ('WEST', 50)`)

	res, err := db.Exec(`SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s n=%s total=%s\n", row[0].Format(), row[1].Format(), row[2].Format())
	}
	// Output:
	// EAST n=2 total=300
	// WEST n=1 total=50
}

// Verified reads detect (and survive) a malicious provider: Merkle
// completeness proofs pin each provider to its committed table, and robust
// reconstruction identifies corrupted shares.
func Example_verified() {
	cluster, err := sssdb.OpenLocal(4, sssdb.Options{K: 2, MasterKey: []byte("trust key")})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client

	db.Exec(`CREATE TABLE t (v INT)`)
	db.Exec(`INSERT INTO t VALUES (1), (2), (3)`)

	cluster.CorruptProvider(1, true) // provider 1 starts flipping share bits

	res, err := db.Exec(`SELECT v FROM t WHERE v BETWEEN 1 AND 3 VERIFIED`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", len(res.Rows), "verified:", res.Verified)

	report, err := db.Audit("t")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("faulty providers:", report.Faulty)
	// Output:
	// rows: 3 verified: true
	// faulty providers: [1]
}
