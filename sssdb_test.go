package sssdb

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sssdb/internal/server"
	"sssdb/internal/store"
	"sssdb/internal/transport"
)

func TestOpenLocalQuickstart(t *testing.T) {
	cluster, err := OpenLocal(3, Options{K: 2, MasterKey: []byte("doc key")})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client
	if _, err := db.Exec(`CREATE TABLE employees (name VARCHAR(8), salary INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO employees VALUES ('JOHN', 42000), ('ALICE', 55000)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT name FROM employees WHERE salary BETWEEN 10000 AND 50000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "JOHN" {
		t.Fatalf("got %v", res.Rows)
	}
	if _, err := db.Exec(`SELECT * FROM missing`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("error alias broken: %v", err)
	}
}

func TestOpenLocalDirsPersistence(t *testing.T) {
	dir := t.TempDir()
	dirs := []string{
		filepath.Join(dir, "p0"),
		filepath.Join(dir, "p1"),
		filepath.Join(dir, "p2"),
	}
	for _, d := range dirs {
		if err := mkdir(d); err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{K: 2, MasterKey: []byte("persist key")}
	cluster, err := OpenLocalDirs(dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Client.Exec(`CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Client.Exec(`INSERT INTO t VALUES (7), (8)`); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Close(); err != nil {
		t.Fatal(err)
	}
	// Provider state survives; note the client catalog is rebuilt from the
	// same schema (a real deployment persists the catalog — see cmd/dasql).
	cluster2, err := OpenLocalDirs(dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster2.Close()
	// The provider still has the rows: creating the same table again fails.
	if _, err := cluster2.Client.Exec(`CREATE TABLE t (a INT)`); err == nil {
		t.Fatal("table survived on providers but create succeeded")
	}
}

// A cluster whose providers run with a tiny page-cache budget must serve
// a table many times the budget, stay within it, and survive a restart.
func TestOpenLocalDirsWithPagedProviders(t *testing.T) {
	dir := t.TempDir()
	dirs := []string{filepath.Join(dir, "p0"), filepath.Join(dir, "p1"), filepath.Join(dir, "p2")}
	for _, d := range dirs {
		if err := mkdir(d); err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{K: 2, MasterKey: []byte("paged key")}
	storeOpts := StoreOptions{PageBytes: 1 << 10, CacheBytes: 8 << 10, CheckpointInterval: -1}
	cluster, err := OpenLocalDirsWith(dirs, opts, storeOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Client.Exec(`CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	const rows = 2000 // far larger than the 8 KiB per-provider budget
	for i := 0; i < rows; i += 100 {
		vals := make([]string, 0, 100)
		for j := i; j < i+100; j++ {
			vals = append(vals, fmt.Sprintf("(%d)", j))
		}
		if _, err := cluster.Client.Exec(`INSERT INTO t VALUES ` + strings.Join(vals, ", ")); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cluster.Client.Exec(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != rows {
		t.Fatalf("count = %d, want %d", res.Rows[0][0].I, rows)
	}
	for i, st := range cluster.stores {
		stats := st.Stats()
		if stats.ResidentBytes > uint64(storeOpts.CacheBytes)+uint64(storeOpts.PageBytes) {
			t.Fatalf("provider %d resident %d bytes over the %d budget", i, stats.ResidentBytes, storeOpts.CacheBytes)
		}
		if stats.Evictions == 0 {
			t.Fatalf("provider %d never evicted despite the table outgrowing its cache", i)
		}
	}
	catalog, err := cluster.Client.ExportCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Close(); err != nil {
		t.Fatal(err)
	}

	cluster2, err := OpenLocalDirsWith(dirs, opts, storeOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster2.Close()
	if err := cluster2.Client.ImportCatalog(catalog); err != nil {
		t.Fatal(err)
	}
	res, err = cluster2.Client.Exec(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != rows {
		t.Fatalf("count after restart = %d, want %d", res.Rows[0][0].I, rows)
	}
}

func TestOpenTCP(t *testing.T) {
	// Spin three real TCP providers.
	var addrs []string
	for i := 0; i < 3; i++ {
		st, err := store.Open("")
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := transport.NewServer(ln, server.New(st))
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr().String())
	}
	db, err := Open(addrs, Options{K: 2, MasterKey: []byte("tcp key")})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (v INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec(`SELECT SUM(v), MEDIAN(v) FROM t WHERE v BETWEEN 20 AND 70`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 270 || res.Rows[0][1].I != 40 {
		t.Fatalf("got %v %v", res.Rows[0][0].I, res.Rows[0][1].I)
	}
}

// A hung provider (accepts, never answers) must not hang queries: the
// per-call deadline trips and the client fails over to live providers.
func TestOpenTimeoutFailsOverHungProvider(t *testing.T) {
	// Three real providers, seeded through a normal client.
	var addrs []string
	for i := 0; i < 3; i++ {
		st, err := store.Open("")
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := transport.NewServer(ln, server.New(st))
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr().String())
	}
	opts := Options{K: 2, MasterKey: []byte("hang key")}
	seed, err := Open(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Exec(`CREATE TABLE t (v INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.Exec(`INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	catalog, err := seed.ExportCatalog()
	if err != nil {
		t.Fatal(err)
	}
	seed.Close()

	// Replace provider 0's address with a black hole: accepts, never
	// answers. Reads should time out on it and fail over to providers 1, 2.
	hole, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hole.Close() })
	go func() {
		for {
			nc, err := hole.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1024)
				for {
					if _, err := nc.Read(buf); err != nil {
						nc.Close()
						return
					}
				}
			}()
		}
	}()
	hungAddrs := append([]string{hole.Addr().String()}, addrs[1:]...)
	db, err := OpenTimeout(hungAddrs, opts, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ImportCatalog(catalog); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := db.Exec(`SELECT SUM(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 6 {
		t.Fatalf("sum = %d", res.Rows[0][0].I)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failover took %v", elapsed)
	}
	// Subsequent reads skip the hung provider entirely (marked down).
	start = time.Now()
	if _, err := db.Exec(`SELECT v FROM t WHERE v BETWEEN 1 AND 3`); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("second query still slow: %v", elapsed)
	}
}

func TestOpenBadAddress(t *testing.T) {
	if _, err := Open([]string{"127.0.0.1:1"}, Options{K: 1, MasterKey: []byte("k")}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestClusterFaultKnobs(t *testing.T) {
	cluster, err := OpenLocal(4, Options{K: 2, MasterKey: []byte("knob key")})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.NumProviders() != 4 {
		t.Fatalf("NumProviders = %d", cluster.NumProviders())
	}
	db := cluster.Client
	if _, err := db.Exec(`CREATE TABLE t (v INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	// Crash / recover round trip.
	cluster.CrashProvider(0)
	cluster.CrashProvider(1)
	cluster.CrashProvider(2)
	if _, err := db.Exec(`SELECT COUNT(*) FROM t`); !errors.Is(err, ErrNotEnough) {
		t.Fatalf("below quorum: %v", err)
	}
	cluster.RecoverProvider(0)
	cluster.RecoverProvider(1)
	cluster.RecoverProvider(2)
	res, err := db.Exec(`SELECT COUNT(*) FROM t`)
	if err != nil || res.Rows[0][0].I != 2 {
		t.Fatalf("after recovery: %v %v", res, err)
	}
	// Corrupt on, audit flags it, corrupt off, audit is clean again.
	cluster.CorruptProvider(3, true)
	report, err := db.Audit("t")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(report.Faulty) != "[3]" {
		t.Fatalf("faulty = %v", report.Faulty)
	}
	cluster.CorruptProvider(3, false)
	report, err = db.Audit("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Faulty) != 0 {
		t.Fatalf("faulty after disabling corrupter = %v", report.Faulty)
	}
}

func TestOpenLocalBadOptions(t *testing.T) {
	if _, err := OpenLocal(2, Options{K: 5, MasterKey: []byte("k")}); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := OpenLocal(0, Options{K: 1, MasterKey: []byte("k")}); err == nil {
		t.Fatal("zero providers accepted")
	}
	if _, err := OpenLocalDirs([]string{"/nonexistent-root-path/x/y"}, Options{K: 1, MasterKey: []byte("k")}); err == nil {
		t.Fatal("unwritable provider dir accepted")
	}
}

func TestValueConstructors(t *testing.T) {
	if IntValue(5).Kind != KindInt || StringValue("x").Kind != KindString ||
		DecimalValue(100, 2).Kind != KindDecimal || BytesValue([]byte{1}).Kind != KindBytes {
		t.Fatal("constructor kinds wrong")
	}
}

func mkdir(path string) error {
	return os.MkdirAll(path, 0o755)
}
