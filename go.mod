module sssdb

go 1.22
