package sssdb

// End-to-end streaming-scan benchmarks over loopback TCP: the same 50k-row
// full scan once on the buffered path (providers answer whole, the client
// materializes every provider response before reconstructing) and once on
// the streaming path (provider cursors ship bounded chunks, the client
// reconstructs incrementally). Streaming should show a fraction of the
// peak client heap and a much earlier first row:
//
//	go test -bench StreamingScan -cpu 4 -benchtime 2x .

import (
	"net"
	"runtime"
	"testing"
	"time"

	"sssdb/internal/server"
	"sssdb/internal/store"
	"sssdb/internal/transport"
)

const streamBenchRows = 50_000

// newStreamBenchClient starts three durable providers on loopback TCP and
// seeds a 50k-row table, returning a client on the requested scan path.
func newStreamBenchClient(b *testing.B, buffered bool) *Client {
	b.Helper()
	addrs := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { st.Close() })
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := transport.NewServerWith(ln, server.New(st), transport.ServerConfig{MaxInflight: 256})
		b.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr().String())
	}
	db, err := Open(addrs, Options{K: 2, MasterKey: []byte("bench"), BufferedScans: buffered})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if _, err := db.Exec(`CREATE TABLE wide (name VARCHAR(8), v INT, w INT)`); err != nil {
		b.Fatal(err)
	}
	rows := seedRows(streamBenchRows)
	for off := 0; off < len(rows); off += 10_000 {
		end := off + 10_000
		if end > len(rows) {
			end = len(rows)
		}
		if _, err := db.InsertValues("wide", rows[off:end]); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// heapSampler periodically forces a collection and records the peak live
// heap. Sampling HeapAlloc raw would mostly measure how far allocation
// outruns the concurrent collector; forcing a GC per sample measures what
// the scan actually keeps reachable — the quantity streaming is meant to
// bound.
type heapSampler struct {
	stop chan struct{}
	done chan uint64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan uint64)}
	go func() {
		var ms runtime.MemStats
		var peak uint64
		sample := func() {
			// Twice: garbage allocated while the first cycle is marking
			// floats through it and is only reclaimed by the second.
			runtime.GC()
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				sample()
			case <-s.stop:
				sample()
				s.done <- peak
				return
			}
		}
	}()
	return s
}

func (s *heapSampler) Stop() uint64 {
	close(s.stop)
	return <-s.done
}

// BenchmarkStreamingScan measures a full 50k-row scan over TCP on both
// scan paths, reporting peak client heap over baseline (peak-heap-B) and
// time to the first row reaching the caller (first-row-ms) alongside the
// usual ns/op full-scan latency.
func BenchmarkStreamingScan(b *testing.B) {
	for _, mode := range []struct {
		name     string
		buffered bool
	}{{"buffered", true}, {"streaming", false}} {
		b.Run(mode.name, func(b *testing.B) {
			db := newStreamBenchClient(b, mode.buffered)
			q := `SELECT name, v, w FROM wide`
			var peakMax uint64
			var firstSum time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				runtime.GC()
				var base runtime.MemStats
				runtime.ReadMemStats(&base)
				sampler := startHeapSampler()
				b.StartTimer()

				start := time.Now()
				r, err := db.QueryRows(q)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for r.Next() {
					if n == 0 {
						firstSum += time.Since(start)
					}
					n++
				}
				r.Close()

				b.StopTimer()
				peak := sampler.Stop()
				if peak > base.HeapAlloc && peak-base.HeapAlloc > peakMax {
					peakMax = peak - base.HeapAlloc
				}
				b.StartTimer()
				if err := r.Err(); err != nil {
					b.Fatal(err)
				}
				if n != streamBenchRows {
					b.Fatalf("scanned %d rows, want %d", n, streamBenchRows)
				}
			}
			b.ReportMetric(float64(peakMax), "peak-heap-B")
			b.ReportMetric(float64(firstSum.Milliseconds())/float64(b.N), "first-row-ms")
		})
	}
}

// BenchmarkStreamingScanLimit runs LIMIT 10 over the 50k-row table and
// asserts the O(limit) transfer property on real sockets: the limit is
// pushed into the provider cursors, so the scan must move a few KiB, not
// the multi-MB full result.
func BenchmarkStreamingScanLimit(b *testing.B) {
	db := newStreamBenchClient(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := db.Stats().BytesReceived
		res, err := db.Exec(`SELECT v FROM wide LIMIT 10`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatalf("%d rows, want 10", len(res.Rows))
		}
		if delta := db.Stats().BytesReceived - before; delta > 64<<10 {
			b.Fatalf("LIMIT 10 over %d rows received %d bytes; limit pushdown broken", streamBenchRows, delta)
		}
	}
}
