// Command dasaudit runs the trust mechanism across a deployment: for every
// table in the catalog it performs a verified full sweep (Merkle
// completeness proofs per provider, cross-provider row-set voting, robust
// share reconstruction) and reports which providers, if any, returned
// corrupted data. Exit status 0 = clean, 1 = faults found or audit failed.
//
// Usage:
//
//	dasaudit -providers host:7001,host:7002,host:7003 -k 2 -key secret -catalog schema.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sssdb"
)

func main() {
	providers := flag.String("providers", "", "comma-separated provider addresses")
	k := flag.Int("k", 2, "reconstruction threshold")
	key := flag.String("key", "", "master key")
	catalog := flag.String("catalog", "", "schema catalog file (required)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-call deadline")
	flag.Parse()

	if *providers == "" || *key == "" || *catalog == "" {
		fmt.Fprintln(os.Stderr, "dasaudit: -providers, -key and -catalog are required")
		os.Exit(2)
	}
	db, err := sssdb.OpenTimeout(strings.Split(*providers, ","),
		sssdb.Options{K: *k, MasterKey: []byte(*key)}, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dasaudit:", err)
		os.Exit(1)
	}
	defer db.Close()
	data, err := os.ReadFile(*catalog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dasaudit:", err)
		os.Exit(1)
	}
	if err := db.ImportCatalog(data); err != nil {
		fmt.Fprintln(os.Stderr, "dasaudit:", err)
		os.Exit(1)
	}
	tables := db.Tables()
	if len(tables) == 0 {
		fmt.Println("dasaudit: catalog has no tables")
		return
	}
	exit := 0
	for _, table := range tables {
		start := time.Now()
		report, err := db.Audit(table)
		switch {
		case err != nil:
			fmt.Printf("FAIL  %-20s %v\n", table, err)
			exit = 1
		case len(report.Faulty) > 0:
			fmt.Printf("FAULT %-20s %d rows, corrupt providers: %v (%v)\n",
				table, report.Rows, report.Faulty, time.Since(start).Round(time.Millisecond))
			exit = 1
		default:
			fmt.Printf("ok    %-20s %d rows verified (%v)\n",
				table, report.Rows, time.Since(start).Round(time.Millisecond))
		}
	}
	os.Exit(exit)
}
