// Command dasd runs one Database Service Provider: a share-space storage
// engine serving the sssdb wire protocol over TCP.
//
// Usage:
//
//	dasd -listen 127.0.0.1:7001 -dir /var/lib/dasd1 -cache-bytes 67108864
//
// With -dir, state is durable (paged row heap + write-ahead log with
// incremental checkpoints, recovered on restart); without it the provider
// is memory-only. -cache-bytes bounds resident page memory, so tables much
// larger than RAM stay servable — cold pages fault in from disk on demand.
// The provider never holds keys or plaintext: everything it stores is
// shares and opaque payloads.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"sssdb/internal/server"
	"sssdb/internal/store"
	"sssdb/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7001", "address to serve the provider protocol on")
	dir := flag.String("dir", "", "data directory (empty = memory-only)")
	checkpointOnStart := flag.Bool("checkpoint", false, "checkpoint and truncate the WAL after recovery")
	cacheBytes := flag.Int64("cache-bytes", 0, "page cache budget in bytes (0 = default, <0 unbounded)")
	inflight := flag.Int("inflight", 0, "max concurrent requests per connection (0 = default)")
	chunk := flag.Int("chunk", 0, "streamed row-frame chunk size in bytes (0 = default, <0 disables streaming)")
	flag.Parse()

	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatalf("dasd: creating data dir: %v", err)
		}
	}
	st, err := store.OpenOptions(*dir, store.Options{CacheBytes: *cacheBytes})
	if err != nil {
		log.Fatalf("dasd: opening store: %v", err)
	}
	defer st.Close()
	if *checkpointOnStart {
		if err := st.Checkpoint(); err != nil {
			log.Fatalf("dasd: checkpointing: %v", err)
		}
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("dasd: listen %s: %v", *listen, err)
	}
	srv := transport.NewServerWith(ln, server.New(st), transport.ServerConfig{
		MaxInflight: *inflight,
		ChunkBytes:  *chunk,
	})
	fmt.Printf("dasd: serving on %s (dir=%q, tables=%d)\n", srv.Addr(), *dir, len(st.ListTables()))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dasd: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("dasd: closing server: %v", err)
	}
	if *dir != "" {
		if err := st.Checkpoint(); err != nil {
			log.Printf("dasd: final checkpoint: %v", err)
		}
	}
}
