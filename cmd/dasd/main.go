// Command dasd runs one Database Service Provider: a share-space storage
// engine serving the sssdb wire protocol over TCP.
//
// Usage:
//
//	dasd -listen 127.0.0.1:7001 -dir /var/lib/dasd1 -cache-bytes 67108864
//
// With -dir, state is durable (paged row heap + write-ahead log with
// incremental checkpoints, recovered on restart); without it the provider
// is memory-only. -cache-bytes bounds resident page memory, so tables much
// larger than RAM stay servable — cold pages fault in from disk on demand.
// The provider never holds keys or plaintext: everything it stores is
// shares and opaque payloads.
//
// Admission control is server-wide: -inflight bounds concurrently
// executing requests across all connections, -queue bounds each tenant's
// wait queue (excess is shed fast with a retryable busy error), and
// -weights skews the deficit-round-robin scheduler between tenants. On
// SIGINT/SIGTERM the provider stops accepting, drains queued and
// in-flight requests for up to -drain-timeout (a second signal forces
// immediate close), checkpoints, and exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sssdb/internal/server"
	"sssdb/internal/store"
	"sssdb/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7001", "address to serve the provider protocol on")
	dir := flag.String("dir", "", "data directory (empty = memory-only)")
	checkpointOnStart := flag.Bool("checkpoint", false, "checkpoint and truncate the WAL after recovery")
	cacheBytes := flag.Int64("cache-bytes", 0, "page cache budget in bytes (0 = default, <0 unbounded)")
	inflight := flag.Int("inflight", 0, "server-wide max concurrently-executing requests (0 = default)")
	queue := flag.Int("queue", 0, "per-tenant admission queue bound (0 = default, <0 = no queueing)")
	weights := flag.String("weights", "", "per-tenant scheduling weights, e.g. analytics=1,serving=4")
	chunk := flag.Int("chunk", 0, "streamed row-frame chunk size in bytes (0 = default, <0 disables streaming)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight and queued requests")
	flag.Parse()

	tenantWeights, err := parseWeights(*weights)
	if err != nil {
		log.Fatalf("dasd: %v", err)
	}

	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			log.Fatalf("dasd: creating data dir: %v", err)
		}
	}
	st, err := store.OpenOptions(*dir, store.Options{CacheBytes: *cacheBytes})
	if err != nil {
		log.Fatalf("dasd: opening store: %v", err)
	}
	if *checkpointOnStart {
		if err := st.Checkpoint(); err != nil {
			log.Fatalf("dasd: checkpointing: %v", err)
		}
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("dasd: listen %s: %v", *listen, err)
	}
	srv := transport.NewServerWith(ln, server.New(st), transport.ServerConfig{
		MaxInflight:   *inflight,
		MaxQueue:      *queue,
		TenantWeights: tenantWeights,
		ChunkBytes:    *chunk,
	})
	fmt.Printf("dasd: serving on %s (dir=%q, tables=%d)\n", srv.Addr(), *dir, len(st.ListTables()))

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful shutdown: stop accepting, shed new submissions, and give
	// queued and in-flight requests the drain budget to finish so their
	// responses reach clients. A second signal skips the drain.
	fmt.Printf("dasd: draining (up to %v; signal again to force)\n", *drainTimeout)
	drained := make(chan bool, 1)
	go func() { drained <- srv.Shutdown(*drainTimeout) }()
	select {
	case ok := <-drained:
		if !ok {
			log.Printf("dasd: drain timed out; closing with requests in flight")
			srv.Close()
		}
	case <-sig:
		fmt.Println("dasd: second signal; closing immediately")
		srv.Close()
	}
	if *dir != "" {
		if err := st.Checkpoint(); err != nil {
			log.Printf("dasd: final checkpoint: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		log.Printf("dasd: closing store: %v", err)
	}
}

// parseWeights parses "tenant=weight,..." into the scheduler's weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	m := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("weight %q: want TENANT=N", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("weight %q: want a positive integer", part)
		}
		m[name] = w
	}
	return m, nil
}
