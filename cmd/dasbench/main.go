// Command dasbench drives open-loop load at running providers (dasd): it
// offers operations at a fixed target rate on a schedule that does not
// slow down when the servers do, so the reported latencies include queue
// wait — the coordinated-omission-free view a real client population
// would see. Operations follow a YCSB-style mix (point reads, point
// writes, short scans) over a numeric keyspace, optionally Zipf-skewed.
//
// Usage:
//
//	dasbench -providers 127.0.0.1:7001,127.0.0.1:7002 -load 10000 \
//	         -rate 500 -duration 10s -mix 50-50 -tenant bench
//
// -load creates the benchmark table on every provider and fills it with
// explicit row ids 1..N first; reuse an already-loaded table by omitting
// it. -ramp replaces -rate/-duration with a comma-separated schedule like
// "100x5s,500x10s". Busy-shed operations are reported separately from
// failures: with -retries 0 (the default here) shedding is visible rather
// than hidden behind transparent client retries.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sssdb/internal/loadgen"
	"sssdb/internal/proto"
	"sssdb/internal/transport"
	"sssdb/internal/workload"
)

const benchTable = "kv"

func key8(k uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return b[:]
}

func parseRamp(s string) ([]loadgen.Stage, error) {
	var ramp []loadgen.Stage
	for _, part := range strings.Split(s, ",") {
		rate, durS, ok := strings.Cut(strings.TrimSpace(part), "x")
		if !ok {
			return nil, fmt.Errorf("stage %q: want RATExDURATION (e.g. 500x10s)", part)
		}
		r, err := strconv.ParseFloat(rate, 64)
		if err != nil {
			return nil, fmt.Errorf("stage %q: %v", part, err)
		}
		d, err := time.ParseDuration(durS)
		if err != nil {
			return nil, fmt.Errorf("stage %q: %v", part, err)
		}
		ramp = append(ramp, loadgen.Stage{Rate: r, Duration: d})
	}
	return ramp, nil
}

func main() {
	providers := flag.String("providers", "127.0.0.1:7001", "comma-separated provider addresses")
	loadRows := flag.Uint64("load", 0, "create the benchmark table and insert this many rows first (0 = table already loaded)")
	rate := flag.Float64("rate", 100, "target arrival rate, ops/s")
	duration := flag.Duration("duration", 10*time.Second, "offered-load window")
	ramp := flag.String("ramp", "", "stage schedule RATExDUR,RATExDUR (overrides -rate/-duration)")
	mixName := flag.String("mix", workload.MixReadHeavy.Name, "operation mix: read-heavy, 50-50, or scan-heavy")
	keys := flag.Uint64("keys", 0, "keyspace size (default: -load count, else 10000)")
	zipf := flag.Float64("zipf", 0, "Zipf key-popularity skew (>1 enables; uniform otherwise)")
	seed := flag.Int64("seed", 1, "operation stream seed")
	tenant := flag.String("tenant", "", "tenant id sent in the connection hello")
	workers := flag.Int("workers", 64, "max concurrent in-flight operations")
	retries := flag.Int("retries", -1, "transparent busy retries per op (-1 = none: report shedding)")
	jsonPath := flag.String("json", "", "also write the result as JSON to this file")
	flag.Parse()

	mix, ok := workload.MixByName(*mixName)
	if !ok {
		log.Fatalf("dasbench: unknown mix %q", *mixName)
	}
	cfg := loadgen.Config{
		Rate: *rate, Duration: *duration,
		Workers: *workers, Mix: mix, Keys: *keys, ZipfS: *zipf, Seed: *seed,
	}
	if *ramp != "" {
		stages, err := parseRamp(*ramp)
		if err != nil {
			log.Fatalf("dasbench: %v", err)
		}
		cfg.Ramp = stages
	}
	if cfg.Keys == 0 && *loadRows > 0 {
		cfg.Keys = *loadRows
	}

	var conns []transport.Conn
	for _, addr := range strings.Split(*providers, ",") {
		c, err := transport.DialWith(strings.TrimSpace(addr), transport.DialConfig{
			Timeout: 30 * time.Second, Tenant: *tenant, BusyRetries: *retries,
		})
		if err != nil {
			log.Fatalf("dasbench: dial %s: %v", addr, err)
		}
		defer c.Close()
		conns = append(conns, c)
	}

	if *loadRows > 0 {
		spec := proto.TableSpec{Name: benchTable, Columns: []proto.ColumnSpec{
			{Name: "k", Kind: proto.KindPlain, Indexed: true},
			{Name: "v", Kind: proto.KindPlain},
		}}
		payload := make([]byte, 64)
		for _, c := range conns {
			if resp, err := c.Call(&proto.CreateTableRequest{Spec: spec}); err != nil {
				log.Fatalf("dasbench: create table: %v", err)
			} else if er, bad := resp.(*proto.ErrorResponse); bad {
				log.Fatalf("dasbench: create table: %s", er.Msg)
			}
			const batch = 500
			for lo := uint64(1); lo <= *loadRows; lo += batch {
				rows := make([]proto.Row, 0, batch)
				for id := lo; id < lo+batch && id <= *loadRows; id++ {
					rows = append(rows, proto.Row{ID: id, Cells: [][]byte{key8(id), payload}})
				}
				if resp, err := c.Call(&proto.InsertRequest{Table: benchTable, Rows: rows}); err != nil {
					log.Fatalf("dasbench: load: %v", err)
				} else if er, bad := resp.(*proto.ErrorResponse); bad {
					log.Fatalf("dasbench: load: %s", er.Msg)
				}
			}
		}
		fmt.Printf("dasbench: loaded %d rows into %q on %d providers\n", *loadRows, benchTable, len(conns))
	}

	payload := make([]byte, 64)
	scanLimit := uint64(mix.ScanLimit)
	if scanLimit == 0 {
		scanLimit = 50
	}
	var rr atomic.Uint64
	do := func(op workload.Op) error {
		c := conns[rr.Add(1)%uint64(len(conns))]
		var req proto.Message
		switch op.Kind {
		case workload.OpWrite:
			req = &proto.UpdateRequest{Table: benchTable, Rows: []proto.Row{{ID: op.Key, Cells: [][]byte{key8(op.Key), payload}}}}
		case workload.OpScan:
			req = &proto.ScanRequest{Table: benchTable, Filter: &proto.Filter{
				Col: "k", Op: proto.FilterRange, Lo: key8(op.Key), Hi: key8(op.Key + scanLimit - 1),
			}, Limit: scanLimit}
		default:
			req = &proto.ScanRequest{Table: benchTable, Filter: &proto.Filter{
				Col: "k", Op: proto.FilterEq, Lo: key8(op.Key),
			}, Limit: 1}
		}
		resp, err := c.Call(req)
		if err != nil {
			return err
		}
		if er, bad := resp.(*proto.ErrorResponse); bad {
			return er.Err()
		}
		return nil
	}

	res := loadgen.Run(cfg, do)
	fmt.Printf("dasbench: offered %d ops over %v (window %v)\n", res.Offered, res.Elapsed.Round(time.Millisecond), res.Window)
	fmt.Printf("  completed %d (%.0f ops/s goodput)  busy %d  failed %d  dropped %d\n",
		res.Completed, res.Goodput(), res.Busy, res.Failed, res.Dropped)
	fmt.Printf("  latency p50 %v  p99 %v  p99.9 %v (open-loop: queue wait included)\n",
		res.Latency.Quantile(0.50).Round(time.Microsecond),
		res.Latency.Quantile(0.99).Round(time.Microsecond),
		res.Latency.Quantile(0.999).Round(time.Microsecond))

	if *jsonPath != "" {
		out := map[string]any{
			"mix": mix.Name, "offered": res.Offered, "completed": res.Completed,
			"busy": res.Busy, "failed": res.Failed, "dropped": res.Dropped,
			"window_ns": res.Window, "elapsed_ns": res.Elapsed,
			"goodput_ops": res.Goodput(),
			"p50_ns":      res.Latency.Quantile(0.50),
			"p99_ns":      res.Latency.Quantile(0.99),
			"p999_ns":     res.Latency.Quantile(0.999),
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatalf("dasbench: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("dasbench: %v", err)
		}
		fmt.Printf("dasbench: wrote %s\n", *jsonPath)
	}
	if res.Failed > 0 {
		os.Exit(1)
	}
}
