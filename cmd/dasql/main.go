// Command dasql is the interactive SQL shell of the data source: it
// connects to n providers (or starts an in-process cluster with -local),
// rewrites every statement into share space, and prints reconstructed
// results.
//
// Usage:
//
//	dasql -providers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 -k 2 -key secret
//	dasql -local 3 -k 2
//
// Shell commands: .tables, .stats, .audit <table>, .help, .quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"sssdb"
)

func main() {
	providers := flag.String("providers", "", "comma-separated provider addresses")
	local := flag.Int("local", 0, "start an in-process cluster with this many providers instead")
	k := flag.Int("k", 2, "reconstruction threshold")
	key := flag.String("key", "", "master key (required with -providers; never sent to providers)")
	verified := flag.Bool("verified", false, "verify every read (Merkle proofs + robust reconstruction)")
	catalog := flag.String("catalog", "", "schema catalog file: loaded on start, saved after schema changes")
	execOne := flag.String("e", "", "execute one statement and exit (scriptable mode)")
	flag.Parse()

	opts := sssdb.Options{K: *k, Verified: *verified}
	var db *sssdb.Client
	switch {
	case *local > 0:
		if *key == "" {
			*key = "dasql-local-demo-key"
		}
		opts.MasterKey = []byte(*key)
		cluster, err := sssdb.OpenLocal(*local, opts)
		if err != nil {
			fatal(err)
		}
		defer cluster.Close()
		db = cluster.Client
		fmt.Printf("dasql: in-process cluster, n=%d k=%d\n", *local, *k)
	case *providers != "":
		if *key == "" {
			fatal(fmt.Errorf("-key is required with -providers"))
		}
		opts.MasterKey = []byte(*key)
		addrs := strings.Split(*providers, ",")
		var err error
		db, err = sssdb.Open(addrs, opts)
		if err != nil {
			fatal(err)
		}
		defer db.Close()
		fmt.Printf("dasql: connected to %d providers, k=%d\n", len(addrs), *k)
	default:
		fatal(fmt.Errorf("pass -providers or -local; see -h"))
	}

	if *catalog != "" {
		if data, err := os.ReadFile(*catalog); err == nil {
			if err := db.ImportCatalog(data); err != nil {
				fatal(fmt.Errorf("loading catalog %s: %w", *catalog, err))
			}
			fmt.Printf("dasql: catalog loaded, %d tables\n", len(db.Tables()))
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}
	saveCatalog := func() {
		if *catalog == "" {
			return
		}
		data, err := db.ExportCatalog()
		if err != nil {
			fmt.Println("error saving catalog:", err)
			return
		}
		if err := os.WriteFile(*catalog, data, 0o600); err != nil {
			fmt.Println("error saving catalog:", err)
		}
	}
	defer saveCatalog()

	if *execOne != "" {
		res, err := db.Exec(*execOne)
		if err != nil {
			fatal(err)
		}
		printResult(res)
		return
	}

	// The shell holds at most one open transaction: BEGIN opens it, and
	// every later statement routes through the handle until COMMIT or
	// ROLLBACK (or an abort) finishes it.
	var tx *sssdb.Tx
	execLine := func(q string) (*sssdb.Result, error) {
		if tx != nil {
			res, err := tx.Exec(q)
			if tx.Done() {
				tx = nil
			}
			return res, err
		}
		if word := strings.ToUpper(strings.Fields(q)[0]); word == "BEGIN" {
			t, err := db.Begin()
			if err != nil {
				return nil, err
			}
			tx = t
			return &sssdb.Result{}, nil
		}
		return db.Exec(q)
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("sssdb> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println("statements: CREATE [PUBLIC] TABLE / INSERT / SELECT [GROUP BY|ORDER BY|VERIFIED] /")
			fmt.Println("            UPDATE / DELETE / DROP TABLE / EXPLAIN SELECT ...")
			fmt.Println("            BEGIN / COMMIT / ROLLBACK (multi-statement transactions)")
			fmt.Println("shell: .tables  .stats  .audit <table>  .quit")
		case line == ".tables":
			for _, t := range db.Tables() {
				fmt.Println(" ", t)
			}
		case line == ".stats":
			st := db.Stats()
			fmt.Printf("  calls=%d sent=%d recv=%d bytes\n", st.Calls, st.BytesSent, st.BytesReceived)
		case strings.HasPrefix(line, ".audit "):
			table := strings.TrimSpace(strings.TrimPrefix(line, ".audit "))
			report, err := db.Audit(table)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("  %d rows verified; faulty providers: %v\n", report.Rows, report.Faulty)
		default:
			res, err := execLine(line)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printResult(res)
			// Persist schema changes and row-id counters.
			saveCatalog()
		}
		if tx != nil {
			fmt.Print("sssdb(tx)> ")
		} else {
			fmt.Print("sssdb> ")
		}
	}
}

func printResult(res *sssdb.Result) {
	if len(res.Columns) == 0 {
		fmt.Printf("  ok (%d rows affected)\n", res.Affected)
		return
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = v.Format()
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	printRow := func(parts []string) {
		out := make([]string, len(parts))
		for i, p := range parts {
			out[i] = fmt.Sprintf("%-*s", widths[i], p)
		}
		fmt.Println("  " + strings.Join(out, " | "))
	}
	printRow(res.Columns)
	sep := make([]string, len(res.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range cells {
		printRow(row)
	}
	suffix := ""
	if res.Verified {
		suffix = " (verified)"
	}
	fmt.Printf("  %d rows%s\n", len(res.Rows), suffix)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dasql:", err)
	os.Exit(1)
}
