// Command dasload bulk-loads CSV data into an outsourced table: each row is
// typed against the table's schema, split into shares, and distributed to
// every provider in batches.
//
// Usage:
//
//	dasload -providers host:7001,host:7002,host:7003 -k 2 -key secret \
//	        -catalog schema.json -table employees -csv employees.csv
//
// The CSV columns must match the table's columns in order. Values are
// parsed per column type: INT and DECIMAL as numeric literals, VARCHAR and
// BLOB as raw strings. With -create, the table is created first from
// -schema (a CREATE TABLE statement).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sssdb"
)

func main() {
	providers := flag.String("providers", "", "comma-separated provider addresses")
	local := flag.Int("local", 0, "use an in-process cluster instead (demo)")
	k := flag.Int("k", 2, "reconstruction threshold")
	key := flag.String("key", "", "master key")
	catalog := flag.String("catalog", "", "schema catalog file (loaded/saved)")
	table := flag.String("table", "", "target table")
	csvPath := flag.String("csv", "", "CSV file to load ('-' for stdin)")
	schema := flag.String("schema", "", "CREATE TABLE statement to run first")
	batch := flag.Int("batch", 500, "rows per insert batch")
	timeout := flag.Duration("timeout", 0, "per-call deadline against providers (0 = none)")
	serial := flag.Bool("serial", false, "use the serial (non-multiplexed) wire protocol")
	flag.Parse()

	if *table == "" || *csvPath == "" {
		fatal(fmt.Errorf("-table and -csv are required"))
	}
	opts := sssdb.Options{K: *k}
	var db *sssdb.Client
	switch {
	case *local > 0:
		if *key == "" {
			*key = "dasload-local-demo-key"
		}
		opts.MasterKey = []byte(*key)
		cluster, err := sssdb.OpenLocal(*local, opts)
		if err != nil {
			fatal(err)
		}
		defer cluster.Close()
		db = cluster.Client
	case *providers != "":
		if *key == "" {
			fatal(fmt.Errorf("-key is required with -providers"))
		}
		opts.MasterKey = []byte(*key)
		var err error
		db, err = sssdb.OpenWith(strings.Split(*providers, ","), opts, sssdb.DialConfig{
			Timeout:         *timeout,
			SerialTransport: *serial,
		})
		if err != nil {
			fatal(err)
		}
		defer db.Close()
	default:
		fatal(fmt.Errorf("pass -providers or -local"))
	}

	if *catalog != "" {
		if data, err := os.ReadFile(*catalog); err == nil {
			if err := db.ImportCatalog(data); err != nil {
				fatal(err)
			}
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}
	if *schema != "" {
		if _, err := db.Exec(*schema); err != nil {
			fatal(fmt.Errorf("creating table: %w", err))
		}
	}

	var in io.Reader = os.Stdin
	if *csvPath != "-" {
		f, err := os.Open(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	reader := csv.NewReader(in)
	reader.TrimLeadingSpace = true

	start := time.Now()
	total := 0
	var pending [][]string
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		stmt, err := buildInsert(*table, pending)
		if err != nil {
			return err
		}
		if _, err := db.Exec(stmt); err != nil {
			return err
		}
		total += len(pending)
		pending = pending[:0]
		return nil
	}
	for {
		record, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(fmt.Errorf("reading CSV: %w", err))
		}
		pending = append(pending, record)
		if len(pending) >= *batch {
			if err := flush(); err != nil {
				fatal(err)
			}
		}
	}
	if err := flush(); err != nil {
		fatal(err)
	}
	if *catalog != "" {
		data, err := db.ExportCatalog()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*catalog, data, 0o600); err != nil {
			fatal(err)
		}
	}
	st := db.Stats()
	fmt.Printf("dasload: %d rows into %q in %v (%d bytes shipped)\n",
		total, *table, time.Since(start).Round(time.Millisecond), st.BytesSent)
}

// buildInsert renders an INSERT statement, quoting every field as a string
// unless it parses as a bare numeric literal. The SQL layer type-checks
// against the actual column types.
func buildInsert(table string, rows [][]string) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", table)
	for r, row := range rows {
		if r > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("(")
		for i, field := range row {
			if i > 0 {
				sb.WriteString(",")
			}
			if isNumericLiteral(field) {
				sb.WriteString(field)
			} else {
				sb.WriteString("'")
				sb.WriteString(strings.ReplaceAll(field, "'", "''"))
				sb.WriteString("'")
			}
		}
		sb.WriteString(")")
	}
	return sb.String(), nil
}

func isNumericLiteral(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '-' || s[0] == '+' {
		i = 1
		if len(s) == 1 {
			return false
		}
	}
	dots := 0
	digits := 0
	for ; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
			digits++
		case s[i] == '.':
			dots++
			if dots > 1 {
				return false
			}
		default:
			return false
		}
	}
	return digits > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dasload:", err)
	os.Exit(1)
}
