// Command ssbench regenerates the paper's experiment tables (DESIGN.md's
// E1–E15 plus the ablations A1–A3) and prints them.
//
// Usage:
//
//	ssbench                       # quick sizes (seconds)
//	ssbench -full                 # full sizes (minutes)
//	ssbench -only E4,E5           # a subset
//	ssbench -list                 # list experiments
//	ssbench -json BENCH_S6.json   # also write S6's machine-readable result
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sssdb/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "run full-size experiments")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E4,E11)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "write the S6/S7/S8 suite's machine-readable result to this file")
	flag.Parse()

	runners := bench.All()
	if *list {
		for _, r := range runners {
			fmt.Printf("  %-4s %s\n", r.ID, r.Doc)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	scale := bench.Scale{Full: *full}
	ran := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		var table *bench.Table
		var err error
		switch {
		case r.ID == "S6" && *jsonPath != "":
			// The JSON flag wants the suite's raw numbers, not just the
			// printed table; run the detailed form once and keep both.
			var detail *bench.S6Result
			table, detail, err = bench.RunS6Detailed(scale)
			if err == nil {
				err = writeJSON(*jsonPath, detail)
			}
		case r.ID == "S7" && *jsonPath != "":
			var detail *bench.S7Result
			table, detail, err = bench.RunS7Detailed(scale)
			if err == nil {
				err = writeJSON(*jsonPath, detail)
			}
		case r.ID == "S8" && *jsonPath != "":
			var detail *bench.S8Result
			table, detail, err = bench.RunS8Detailed(scale)
			if err == nil {
				err = writeJSON(*jsonPath, detail)
			}
		default:
			table, err = r.Fn(scale)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "ssbench: no experiments matched -only; use -list")
		os.Exit(1)
	}
}

// writeJSON persists a suite's numbers for CI trend tracking.
func writeJSON(path string, res any) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("ssbench: wrote %s\n", path)
	return nil
}
