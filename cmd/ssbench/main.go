// Command ssbench regenerates the paper's experiment tables (DESIGN.md's
// E1–E15 plus the ablations A1–A3) and prints them.
//
// Usage:
//
//	ssbench              # quick sizes (seconds)
//	ssbench -full        # full sizes (minutes)
//	ssbench -only E4,E5  # a subset
//	ssbench -list        # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sssdb/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "run full-size experiments")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E4,E11)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	runners := bench.All()
	if *list {
		for _, r := range runners {
			fmt.Printf("  %-4s %s\n", r.ID, r.Doc)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	scale := bench.Scale{Full: *full}
	ran := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		table, err := r.Fn(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "ssbench: no experiments matched -only; use -list")
		os.Exit(1)
	}
}
