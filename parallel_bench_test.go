package sssdb

// Parallel-pipeline benchmarks. Run with -cpu 1,4 to compare the serial
// path (ParallelWorkers defaults to GOMAXPROCS, so -cpu 1 pins one worker)
// against multi-core share reconstruction/encoding:
//
//	go test -bench 'Parallel|MixedWorkload' -cpu 1,4 -benchtime 2x .

import (
	"fmt"
	"sync/atomic"
	"testing"
)

const parallelBenchRows = 50_000

// seedRows builds a deterministic multi-column batch: VARCHAR decode plus
// two INT columns keep per-row reconstruction cost realistic.
func seedRows(n int) [][]Value {
	rows := make([][]Value, n)
	for i := 0; i < n; i++ {
		rows[i] = []Value{
			StringValue(fmt.Sprintf("n%06d", i)),
			IntValue(int64(i % 9973)),
			IntValue(int64(1_000_000 + i)),
		}
	}
	return rows
}

func newParallelBenchCluster(b *testing.B, rows int) *Cluster {
	b.Helper()
	cluster, err := OpenLocal(3, Options{K: 2, MasterKey: []byte("bench")})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cluster.Close() })
	if _, err := cluster.Client.Exec(`CREATE TABLE wide (name VARCHAR(8), v INT, w INT)`); err != nil {
		b.Fatal(err)
	}
	if rows > 0 {
		if _, err := cluster.Client.InsertValues("wide", seedRows(rows)); err != nil {
			b.Fatal(err)
		}
	}
	return cluster
}

// BenchmarkScanReconstructParallel measures a full-table SELECT over 50k
// rows: the client fetches every provider row and reconstructs 3 columns
// per row across the worker pool.
func BenchmarkScanReconstructParallel(b *testing.B) {
	cluster := newParallelBenchCluster(b, parallelBenchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Client.Exec(`SELECT * FROM wide`)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != parallelBenchRows {
			b.Fatalf("got %d rows, want %d", len(res.Rows), parallelBenchRows)
		}
	}
}

// BenchmarkBulkInsertParallel measures share encoding on the insert path:
// each iteration splits a 50k-row batch (3 columns: one Shamir + one OPP
// share per provider per cell) across the worker pool.
func BenchmarkBulkInsertParallel(b *testing.B) {
	cluster := newParallelBenchCluster(b, 0)
	batch := seedRows(parallelBenchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Client.InsertValues("wide", batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMixedWorkloadThroughput drives concurrent statements through one
// client: each parallel goroutine issues range SELECTs with an occasional
// INSERT mixed in (1 in 16). Throughput at -cpu 4 versus -cpu 1 shows what
// statement-level read concurrency buys once SELECTs share the client and
// store locks.
func BenchmarkMixedWorkloadThroughput(b *testing.B) {
	cluster := newParallelBenchCluster(b, parallelBenchRows)
	var inserted atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if i%16 == 0 {
				id := inserted.Add(1)
				q := fmt.Sprintf(`INSERT INTO wide VALUES ('x%06d', %d, %d)`, id%1_000_000, id%9973, 2_000_000+id)
				if _, err := cluster.Client.Exec(q); err != nil {
					b.Fatal(err)
				}
				continue
			}
			lo := (i * 97) % 9000
			q := fmt.Sprintf(`SELECT name, w FROM wide WHERE v BETWEEN %d AND %d`, lo, lo+100)
			if _, err := cluster.Client.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
