// Package sssdb is a secret-sharing database-as-a-service: a Go
// implementation of the outsourcing framework from "Database Management as
// a Service: Challenges and Opportunities" (Agrawal, El Abbadi, Emekci,
// Metwally — ICDE 2009).
//
// Instead of encrypting outsourced data, sssdb splits every value into
// shares spread across n independent Database Service Providers:
//
//   - a random Shamir share over GF(2^61-1) per provider — information-
//     theoretically secure, additively homomorphic (providers compute SUM
//     partials without learning anything), reconstructable from any k;
//   - an order-preserving polynomial share per provider (Sec. IV of the
//     paper) — deterministic per value domain, so providers can filter
//     exact-match and range predicates, order rows for MIN/MAX/MEDIAN, and
//     execute same-domain equijoins entirely in share space.
//
// The client (the paper's "data source D") speaks SQL:
//
//	cluster, _ := sssdb.OpenLocal(3, sssdb.Options{K: 2, MasterKey: key})
//	defer cluster.Close()
//	db := cluster.Client
//	db.Exec(`CREATE TABLE employees (name VARCHAR(8), salary INT)`)
//	db.Exec(`INSERT INTO employees VALUES ('JOHN', 42000)`)
//	res, _ := db.Exec(`SELECT name FROM employees WHERE salary BETWEEN 10000 AND 50000`)
//
// Appending VERIFIED to a SELECT (or setting Options.Verified) turns on the
// trust machinery: Merkle completeness proofs per provider, cross-provider
// row-set voting, and robust share reconstruction that identifies which
// providers returned corrupted data.
//
// The packages under internal/ implement every subsystem — field
// arithmetic, Shamir sharing, order-preserving polynomials, the provider
// storage engine (B+-tree indexes, WAL durability), the wire protocol, the
// SQL front end — plus the baselines the paper argues against (encrypted
// outsourcing, PIR, commutative-encryption PSI). See DESIGN.md for the map
// and EXPERIMENTS.md for the reproduced results.
package sssdb

import (
	"fmt"
	"time"

	"sssdb/internal/client"
	"sssdb/internal/proto"
	"sssdb/internal/server"
	"sssdb/internal/store"
	"sssdb/internal/transport"
)

// Client is the data source: it owns the master key, outsources tables as
// shares, rewrites SQL into share-space requests, and reconstructs results
// from any K of N providers.
type Client = client.Client

// Options configures a Client; see the field docs in internal/client.
type Options = client.Options

// Result is the outcome of one statement.
type Result = client.Result

// Rows is an incremental SELECT result, returned by Client.QueryRows:
// streaming-eligible queries deliver rows as provider chunks arrive with
// bounded memory; everything else iterates a materialized result. Always
// Close a Rows.
type Rows = client.Rows

// Value is a typed cell value.
type Value = client.Value

// Tx is a multi-statement transaction handle, returned by Client.Begin.
// Reads inside a Tx see a snapshot of committed state as of Begin; writes
// buffer client-side and land atomically at Commit via a client-coordinated
// two-phase commit across the provider fleet (all groups of a sharded
// client included). Rollback discards the buffer. Not safe for concurrent
// use.
type Tx = client.Tx

// AuditReport summarizes a verified full-table sweep.
type AuditReport = client.AuditReport

// Value kind tags.
const (
	KindInt     = client.KindInt
	KindDecimal = client.KindDecimal
	KindString  = client.KindString
	KindBytes   = client.KindBytes
)

// Value constructors, re-exported for bulk loading via InsertValues.
var (
	IntValue     = client.IntValue
	DecimalValue = client.DecimalValue
	StringValue  = client.StringValue
	BytesValue   = client.BytesValue
)

// Common errors surfaced by Exec.
var (
	ErrNoSuchTable  = client.ErrNoSuchTable
	ErrNoSuchColumn = client.ErrNoSuchColumn
	ErrTypeMismatch = client.ErrTypeMismatch
	ErrUnsupported  = client.ErrUnsupported
	ErrNotEnough    = client.ErrNotEnough
	ErrVerification = client.ErrVerification
	// ErrDeadline reports a read statement that ran out of its
	// Options.ReadDeadline budget before K providers answered.
	ErrDeadline = client.ErrDeadline
	// ErrTxDone reports use of a committed or rolled-back Tx.
	ErrTxDone = client.ErrTxDone
	// ErrTxAborted reports a Commit that could not reach its write quorum
	// and rolled back everywhere.
	ErrTxAborted = client.ErrTxAborted
)

// DialConfig tunes how the client connects to providers over TCP.
type DialConfig struct {
	// Timeout is the per-call deadline. A provider that does not answer
	// within Timeout is treated as crashed and the client fails over to
	// the remaining providers (reads need only K of N). Zero disables
	// deadlines.
	Timeout time.Duration
	// SerialTransport disables the multiplexed wire protocol and forces
	// the one-request-per-roundtrip legacy framing, even against servers
	// that support multiplexing. Useful for benchmarking and for debugging
	// protocol issues.
	SerialTransport bool
	// MaxRedials caps automatic reconnect attempts after a connection
	// dies, per call, for requests that never reached the wire. Zero
	// means the default (2); negative disables redialing.
	MaxRedials int
	// Tenant names this client's workload to the providers' admission
	// schedulers: all connections carrying the same tenant id share one
	// fair-scheduling queue server-side, so opening more connections (or
	// more clients) under one tenant never multiplies that tenant's share.
	// Empty joins the anonymous tenant.
	Tenant string
	// BusyRetries caps transparent retries (with exponential backoff) when
	// an overloaded provider sheds a request with "server busy". Shed
	// requests never executed, so retrying is safe. Zero means the default
	// (4); negative disables retrying and surfaces the busy error.
	BusyRetries int
}

// Open connects a data source to n providers listening at the given TCP
// addresses (for providers started with cmd/dasd). The address order is
// significant: providers are identified by their position, which selects
// the secret evaluation point their shares are computed at.
func Open(addrs []string, opts Options) (*Client, error) {
	return OpenWith(addrs, opts, DialConfig{})
}

// OpenTimeout is Open with a per-call deadline; see DialConfig.Timeout.
func OpenTimeout(addrs []string, opts Options, timeout time.Duration) (*Client, error) {
	return OpenWith(addrs, opts, DialConfig{Timeout: timeout})
}

// OpenWith is Open with full transport configuration. When Options.Shards
// is greater than 1, addrs must hold Shards equal-sized provider groups
// laid out consecutively (group 0's providers first, then group 1's, ...)
// and the returned client is a shard router.
func OpenWith(addrs []string, opts Options, dc DialConfig) (*Client, error) {
	tc := transport.DialConfig{
		Timeout:          dc.Timeout,
		DisableMultiplex: dc.SerialTransport,
		MaxRedials:       dc.MaxRedials,
		Tenant:           dc.Tenant,
		BusyRetries:      dc.BusyRetries,
	}
	conns := make([]transport.Conn, 0, len(addrs))
	for _, addr := range addrs {
		conn, err := transport.DialWith(addr, tc)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("sssdb: connecting to provider %q: %w", addr, err)
		}
		conns = append(conns, conn)
	}
	if opts.Shards > 1 {
		groups, err := splitGroups(conns, opts.Shards)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		return client.NewSharded(groups, opts)
	}
	return client.New(conns, opts)
}

// splitGroups partitions a flat consecutive connection list into shards
// equal provider groups.
func splitGroups(conns []transport.Conn, shards int) ([][]transport.Conn, error) {
	if len(conns)%shards != 0 {
		return nil, fmt.Errorf("sssdb: %d providers do not divide into %d equal shard groups",
			len(conns), shards)
	}
	per := len(conns) / shards
	groups := make([][]transport.Conn, shards)
	for g := range groups {
		groups[g] = conns[g*per : (g+1)*per]
	}
	return groups, nil
}

// Cluster is an in-process deployment: n provider engines plus a connected
// client, for examples, tests, and single-machine use. All traffic still
// flows through the real wire codec, so byte accounting matches a network
// deployment. Fault-injection knobs let examples and experiments crash or
// corrupt individual providers.
type Cluster struct {
	// Client is the connected data source.
	Client *Client
	stores []*store.Store
	faults []*transport.FaultyConn
	// groupSize is the providers-per-group count of a sharded cluster (equal
	// to the total provider count when unsharded). Provider (g, i) sits at
	// flat index g*groupSize+i in stores and faults.
	groupSize int
}

// CrashProvider makes provider i (flat index) unreachable until
// RecoverProvider.
func (c *Cluster) CrashProvider(i int) { c.faults[i].Crash() }

// RecoverProvider brings a crashed provider back.
func (c *Cluster) RecoverProvider(i int) { c.faults[i].Recover() }

// CrashProviderAt crashes provider i of shard group g.
func (c *Cluster) CrashProviderAt(g, i int) { c.CrashProvider(g*c.groupSize + i) }

// RecoverProviderAt recovers provider i of shard group g.
func (c *Cluster) RecoverProviderAt(g, i int) { c.RecoverProvider(g*c.groupSize + i) }

// CorruptProvider makes provider i (flat index) malicious: it flips bits in
// every field share it returns (on=false restores honesty). Verified
// queries and Audit detect and identify it.
func (c *Cluster) CorruptProvider(i int, on bool) {
	if !on {
		c.faults[i].SetCorrupter(nil)
		return
	}
	c.faults[i].SetCorrupter(func(resp proto.Message) proto.Message {
		if rr, ok := resp.(*proto.RowsResponse); ok {
			for r := range rr.Rows {
				for j, cell := range rr.Rows[r].Cells {
					if len(cell) == 8 {
						rr.Rows[r].Cells[j][0] ^= 0xa5
					}
				}
			}
		}
		return resp
	})
}

// CorruptProviderAt corrupts provider i of shard group g.
func (c *Cluster) CorruptProviderAt(g, i int, on bool) {
	c.CorruptProvider(g*c.groupSize+i, on)
}

// NumProviders returns the total provider count across all groups.
func (c *Cluster) NumProviders() int { return len(c.stores) }

// NumGroups returns the shard group count (1 when unsharded).
func (c *Cluster) NumGroups() int { return len(c.stores) / c.groupSize }

// OpenLocal starts n in-memory providers and connects a client. When
// opts.Shards is greater than 1, n is the per-group provider count and
// Shards groups of n providers each are started behind a shard router.
func OpenLocal(n int, opts Options) (*Cluster, error) {
	total := n
	if opts.Shards > 1 {
		total = n * opts.Shards
	}
	return openLocal(make([]string, total), opts)
}

// OpenLocalSharded starts `groups` provider groups of perGroup in-memory
// providers each and connects a shard router that hash-partitions every
// table's rows across the groups. opts.Shards is overridden with groups.
func OpenLocalSharded(groups, perGroup int, opts Options) (*Cluster, error) {
	opts.Shards = groups
	return openLocal(make([]string, groups*perGroup), opts)
}

// OpenLocalDirs starts one durable provider per directory (state persists
// across restarts via each provider's snapshot + write-ahead log) and
// connects a client. With opts.Shards > 1 the directories are split into
// Shards consecutive equal groups.
func OpenLocalDirs(dirs []string, opts Options) (*Cluster, error) {
	return openLocalWith(dirs, opts, StoreOptions{})
}

// StoreOptions tunes per-provider storage: page size, page-cache budget,
// and checkpoint cadence. The zero value means defaults everywhere.
type StoreOptions = store.Options

// OpenLocalDirsWith is OpenLocalDirs with explicit storage options, for
// providers whose tables are bigger than the memory they may use: a
// bounded CacheBytes keeps each provider's resident pages within budget
// while cold pages fault in from disk on demand.
func OpenLocalDirsWith(dirs []string, opts Options, storeOpts StoreOptions) (*Cluster, error) {
	return openLocalWith(dirs, opts, storeOpts)
}

func openLocal(dirs []string, opts Options) (*Cluster, error) {
	return openLocalWith(dirs, opts, StoreOptions{})
}

func openLocalWith(dirs []string, opts Options, storeOpts StoreOptions) (*Cluster, error) {
	cl := &Cluster{groupSize: len(dirs)}
	conns := make([]transport.Conn, 0, len(dirs))
	for _, dir := range dirs {
		st, err := store.OpenOptions(dir, storeOpts)
		if err != nil {
			cl.closeStores()
			return nil, err
		}
		cl.stores = append(cl.stores, st)
		fc := transport.NewFaulty(transport.NewLocal(server.New(st)))
		cl.faults = append(cl.faults, fc)
		conns = append(conns, fc)
	}
	if opts.Shards > 1 {
		groups, err := splitGroups(conns, opts.Shards)
		if err != nil {
			cl.closeStores()
			return nil, err
		}
		cl.groupSize = len(dirs) / opts.Shards
		c, err := client.NewSharded(groups, opts)
		if err != nil {
			cl.closeStores()
			return nil, err
		}
		cl.Client = c
		return cl, nil
	}
	c, err := client.New(conns, opts)
	if err != nil {
		cl.closeStores()
		return nil, err
	}
	cl.Client = c
	return cl, nil
}

// Close shuts down the client and all providers.
func (c *Cluster) Close() error {
	var firstErr error
	if c.Client != nil {
		if err := c.Client.Close(); err != nil {
			firstErr = err
		}
	}
	if err := c.closeStores(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

func (c *Cluster) closeStores() error {
	var firstErr error
	for _, st := range c.stores {
		if err := st.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
