package sssdb

import (
	"errors"
	"fmt"
	mrand "math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// shardKey returns Options for a sharded fleet keyed on employees.emp.
func shardedOpts() Options {
	return Options{
		K:         2,
		MasterKey: []byte("shard key"),
		ShardKeys: map[string]string{"emp": "id"},
	}
}

// sortedRowStrings renders result rows as sorted strings, for comparing
// result sets whose cross-group order is unspecified.
func sortedRowStrings(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Format()
		}
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}

// rowStringsInOrder renders result rows as strings preserving row order,
// for ORDER BY / GROUP BY comparisons.
func rowStringsInOrder(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Format()
		}
		out = append(out, strings.Join(parts, ","))
	}
	return out
}

// TestShardedDifferential runs an identical randomized workload against a
// single-group cluster and a 4-group sharded cluster and demands equivalent
// results from every statement: the sharded engine must be observationally
// indistinguishable, modulo cross-group row order.
func TestShardedDifferential(t *testing.T) {
	single, err := OpenLocal(3, shardedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sharded, err := OpenLocalSharded(4, 3, shardedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if got := sharded.Client.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}

	// Both clients run every statement; SELECT results compare sorted
	// unless ordered is set (ORDER BY, GROUP BY key order).
	both := func(q string, ordered bool) {
		t.Helper()
		r1, err1 := single.Client.Exec(q)
		r2, err2 := sharded.Client.Exec(q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s:\n single err:  %v\n sharded err: %v", q, err1, err2)
		}
		if err1 != nil {
			return
		}
		if r1.Affected != r2.Affected {
			t.Fatalf("%s: affected %d vs %d", q, r1.Affected, r2.Affected)
		}
		if fmt.Sprint(r1.Columns) != fmt.Sprint(r2.Columns) {
			t.Fatalf("%s: columns %v vs %v", q, r1.Columns, r2.Columns)
		}
		var g1, g2 []string
		if ordered {
			g1, g2 = rowStringsInOrder(r1), rowStringsInOrder(r2)
		} else {
			g1, g2 = sortedRowStrings(r1), sortedRowStrings(r2)
		}
		if fmt.Sprint(g1) != fmt.Sprint(g2) {
			t.Fatalf("%s:\n single  %v\n sharded %v", q, g1, g2)
		}
	}

	both(`CREATE TABLE emp (id INT, name VARCHAR(6), salary INT, dept INT)`, false)
	both(`CREATE TABLE dept (dept INT, label VARCHAR(6))`, false)
	for d := 0; d < 4; d++ {
		both(fmt.Sprintf(`INSERT INTO dept VALUES (%d, 'D%d')`, d, d), false)
	}

	rng := mrand.New(mrand.NewSource(20260808))
	names := []string{"AA", "BB", "CC", "DD", "EE", "FF"}
	nextID := 1
	for step := 0; step < 250; step++ {
		switch op := rng.Intn(12); {
		case op < 4: // insert a unique-id row
			q := fmt.Sprintf(`INSERT INTO emp VALUES (%d, '%s', %d, %d)`,
				nextID, names[rng.Intn(len(names))], rng.Intn(1000), rng.Intn(4))
			nextID++
			both(q, false)
		case op < 5: // point lookup on the shard key (routes to one group)
			both(fmt.Sprintf(`SELECT name, salary FROM emp WHERE id = %d`, 1+rng.Intn(nextID)), false)
		case op < 6: // IN on the shard key (routes to a subset)
			a, b := 1+rng.Intn(nextID), 1+rng.Intn(nextID)
			both(fmt.Sprintf(`SELECT id, salary FROM emp WHERE id IN (%d, %d)`, a, b), false)
		case op < 7: // range scan (scatter)
			lo := rng.Intn(900)
			both(fmt.Sprintf(`SELECT id, name FROM emp WHERE salary BETWEEN %d AND %d`, lo, lo+200), false)
		case op < 8: // aggregates (partial merge across groups)
			lo := rng.Intn(800)
			both(fmt.Sprintf(
				`SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp WHERE salary >= %d`, lo), false)
			both(fmt.Sprintf(`SELECT MEDIAN(salary) FROM emp WHERE salary >= %d`, lo), false)
		case op < 9: // ORDER BY on unique key + LIMIT (deterministic order)
			both(fmt.Sprintf(`SELECT id, salary FROM emp ORDER BY id DESC LIMIT %d`, 1+rng.Intn(8)), true)
		case op < 10: // GROUP BY with HAVING (re-reduce across groups)
			both(`SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept HAVING COUNT(*) >= 2`, true)
		case op < 11: // join (gather both sides, hash-join at the client)
			both(`SELECT emp.name, dept.label FROM emp JOIN dept ON emp.dept = dept.dept WHERE emp.salary >= 500`, false)
		default: // mutations: update by salary range, delete by point id
			if rng.Intn(2) == 0 {
				lo := rng.Intn(900)
				both(fmt.Sprintf(`UPDATE emp SET salary = %d WHERE salary BETWEEN %d AND %d`,
					rng.Intn(1000), lo, lo+40), false)
			} else {
				both(fmt.Sprintf(`DELETE FROM emp WHERE id = %d`, 1+rng.Intn(nextID)), false)
			}
		}
	}
	both(`SELECT COUNT(*) FROM emp`, false)
	both(`SELECT id, name, salary, dept FROM emp`, false)
	both(`DROP TABLE emp`, false)
	both(`SELECT COUNT(*) FROM emp`, false) // both must report no-such-table
}

// TestShardedEmptyShards checks statements over a table whose rows land in
// only some groups: empty groups contribute empty scans and empty aggregate
// partials without poisoning the merge.
func TestShardedEmptyShards(t *testing.T) {
	cluster, err := OpenLocalSharded(4, 3, shardedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client
	if _, err := db.Exec(`CREATE TABLE emp (id INT, name VARCHAR(6), salary INT, dept INT)`); err != nil {
		t.Fatal(err)
	}
	// A single row occupies exactly one of the four groups.
	if _, err := db.Exec(`INSERT INTO emp VALUES (7, 'ONLY', 100, 1)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT name FROM emp WHERE salary BETWEEN 0 AND 1000`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "ONLY" {
		t.Fatalf("scan over mostly-empty shards: %v %v", res, err)
	}
	res, err = db.Exec(`SELECT COUNT(*), SUM(salary), MIN(salary), MAX(salary), AVG(salary) FROM emp`)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{1, 100, 100, 100, 100} {
		if res.Rows[0][i].I != want {
			t.Fatalf("aggregate %d = %d, want %d", i, res.Rows[0][i].I, want)
		}
	}
	res, err = db.Exec(`SELECT dept, COUNT(*) FROM emp GROUP BY dept`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][1].I != 1 {
		t.Fatalf("group by over mostly-empty shards: %v %v", res, err)
	}
	// Entirely empty table: aggregates over zero groups with rows.
	if _, err := db.Exec(`DELETE FROM emp WHERE id = 7`); err != nil {
		t.Fatal(err)
	}
	res, err = db.Exec(`SELECT COUNT(*), SUM(salary) FROM emp`)
	if err != nil || res.Rows[0][0].I != 0 || res.Rows[0][1].I != 0 {
		t.Fatalf("empty-table aggregates: %v %v", res, err)
	}
}

// TestShardedLimitStreamCancel drives QueryRows across shards with a LIMIT
// smaller than the result: the merged iterator must deliver exactly LIMIT
// rows and cancel the undrained group streams on both the early-stop and
// explicit-Close paths.
func TestShardedLimitStreamCancel(t *testing.T) {
	cluster, err := OpenLocalSharded(2, 3, Options{K: 2, MasterKey: []byte("shard key")})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client
	if _, err := db.Exec(`CREATE TABLE t (v INT)`); err != nil {
		t.Fatal(err)
	}
	rows := make([][]Value, 0, 500)
	for i := 0; i < 500; i++ {
		rows = append(rows, []Value{IntValue(int64(i))})
	}
	if _, err := db.InsertValues("t", rows); err != nil {
		t.Fatal(err)
	}

	it, err := db.QueryRows(`SELECT v FROM t LIMIT 40`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("LIMIT 40 across shards delivered %d rows", n)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}

	// Abandon an unlimited scatter mid-iteration: Close must cancel every
	// group stream and release the per-group statement locks (the follow-up
	// INSERT hangs forever if it does not).
	it, err = db.QueryRows(`SELECT v FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !it.Next() {
			t.Fatalf("stream ended after %d rows: %v", i, it.Err())
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1000)`); err != nil {
		t.Fatal(err)
	}

	// Full drain without LIMIT sees every row exactly once.
	it, err = db.QueryRows(`SELECT v FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	n = 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if n != 501 {
		t.Fatalf("full drain saw %d rows, want 501", n)
	}
}

// TestShardedDegradedWriteOneGroup crashes one provider of one group under
// a write quorum: writes keep committing everywhere, the hint backlog is
// confined to the crashed provider's group, and repair converges only that
// group's journal.
func TestShardedDegradedWriteOneGroup(t *testing.T) {
	opts := Options{
		K:              2,
		WriteQuorum:    2,
		MasterKey:      []byte("shard key"),
		RepairInterval: 20 * time.Millisecond,
	}
	cluster, err := OpenLocalSharded(3, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client
	if cluster.NumGroups() != 3 || cluster.NumProviders() != 9 {
		t.Fatalf("cluster shape: %d groups, %d providers", cluster.NumGroups(), cluster.NumProviders())
	}
	if _, err := db.Exec(`CREATE TABLE t (v INT)`); err != nil {
		t.Fatal(err)
	}

	cluster.CrashProviderAt(1, 2) // provider 2 of group 1
	for i := 0; i < 60; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i)); err != nil {
			t.Fatalf("degraded insert %d: %v", i, err)
		}
	}
	res, err := db.Exec(`SELECT COUNT(*) FROM t`)
	if err != nil || res.Rows[0][0].I != 60 {
		t.Fatalf("count under one degraded group: %v %v", res, err)
	}
	if db.PendingHints() == 0 {
		t.Fatal("no hints queued for the crashed provider")
	}
	lagging := db.LaggingProviders()
	if len(lagging) != 1 || lagging[0] != 1*3+2 {
		t.Fatalf("lagging = %v, want [5] (group 1, provider 2)", lagging)
	}
	if db.Converged() {
		t.Fatal("converged while a provider lags")
	}

	cluster.RecoverProviderAt(1, 2)
	db.RepairNow()
	deadline := time.Now().Add(10 * time.Second)
	for !db.Converged() {
		if time.Now().After(deadline) {
			t.Fatalf("repair did not converge; %d hints pending", db.PendingHints())
		}
		time.Sleep(10 * time.Millisecond)
		db.RepairNow()
	}
	if db.PendingHints() != 0 {
		t.Fatalf("%d hints left after convergence", db.PendingHints())
	}
	res, err = db.Exec(`SELECT COUNT(*) FROM t VERIFIED`)
	if err != nil || res.Rows[0][0].I != 60 {
		t.Fatalf("verified count after repair: %v %v", res, err)
	}
}

// TestShardedCorruptionConfinedToGroup corrupts a provider in one group and
// audits: the report must identify it under the flat global numbering.
func TestShardedCorruptionConfinedToGroup(t *testing.T) {
	cluster, err := OpenLocalSharded(2, 4, Options{K: 2, MasterKey: []byte("shard key")})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client
	if _, err := db.Exec(`CREATE TABLE t (v INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i)); err != nil {
			t.Fatal(err)
		}
	}
	cluster.CorruptProviderAt(1, 3, true)
	rep, err := db.Audit("t")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 40 {
		t.Fatalf("audit rows = %d", rep.Rows)
	}
	if len(rep.Faulty) != 1 || rep.Faulty[0] != 1*4+3 {
		t.Fatalf("faulty = %v, want [7] (group 1, provider 3)", rep.Faulty)
	}
	cluster.CorruptProviderAt(1, 3, false)
	rep, err = db.Audit("t")
	if err != nil || len(rep.Faulty) != 0 {
		t.Fatalf("audit after restoring honesty: %v %v", rep, err)
	}
}

// TestShardedCatalogRoundTrip exports a sharded catalog and imports it into
// a fresh router over the same providers: queries resume, inserts get fresh
// row ids, and the shard key keeps routing. A mismatched group count — a
// split the client does not understand — is rejected.
func TestShardedCatalogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dirs := make([]string, 8)
	for i := range dirs {
		dirs[i] = fmt.Sprintf("%s/p%d", dir, i)
		if err := mkdir(dirs[i]); err != nil {
			t.Fatal(err)
		}
	}
	opts := shardedOpts()
	opts.Shards = 4
	cluster, err := OpenLocalDirs(dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	db := cluster.Client
	if _, err := db.Exec(`CREATE TABLE emp (id INT, name VARCHAR(6), salary INT, dept INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO emp VALUES (%d, 'E%d', %d, 0)`, i, i, i*100)); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := db.ExportCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Close(); err != nil {
		t.Fatal(err)
	}

	cluster2, err := OpenLocalDirs(dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster2.Close()
	db2 := cluster2.Client
	if err := db2.ImportCatalog(blob); err != nil {
		t.Fatal(err)
	}
	res, err := db2.Exec(`SELECT name FROM emp WHERE id = 13`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "E13" {
		t.Fatalf("point lookup after import: %v %v", res, err)
	}
	if _, err := db2.Exec(`INSERT INTO emp VALUES (21, 'E21', 2100, 0)`); err != nil {
		t.Fatalf("insert after import: %v", err)
	}
	res, err = db2.Exec(`SELECT COUNT(*) FROM emp`)
	if err != nil || res.Rows[0][0].I != 21 {
		t.Fatalf("count after import: %v %v", res, err)
	}

	// A 2-group client must refuse the 4-group catalog (split detection).
	half, err := OpenLocalSharded(2, 3, shardedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer half.Close()
	if err := half.Client.ImportCatalog(blob); err == nil {
		t.Fatal("importing a 4-group catalog into a 2-group client succeeded")
	}
	// And a single-group client must refuse it too.
	solo, err := OpenLocal(3, shardedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	if err := solo.Client.ImportCatalog(blob); err == nil {
		t.Fatal("importing a sharded catalog into a single-group client succeeded")
	}
}

// TestShardedRoutingSurface covers the router's statement surface: EXPLAIN
// announces the routing decision, UPDATE of the shard key is rejected, and
// unknown tables fail identically.
func TestShardedRoutingSurface(t *testing.T) {
	cluster, err := OpenLocalSharded(4, 3, shardedOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client
	if _, err := db.Exec(`CREATE TABLE emp (id INT, name VARCHAR(6), salary INT, dept INT)`); err != nil {
		t.Fatal(err)
	}

	plan := func(q string) string {
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var b strings.Builder
		for _, row := range res.Rows {
			b.WriteString(row[0].S)
			b.WriteString("\n")
		}
		return b.String()
	}
	if p := plan(`EXPLAIN SELECT name FROM emp WHERE id = 42`); !strings.Contains(p, "routes to group") {
		t.Fatalf("point plan missing routing line:\n%s", p)
	}
	if p := plan(`EXPLAIN SELECT name FROM emp WHERE salary > 10`); !strings.Contains(p, "scatter-gather across 4 groups") {
		t.Fatalf("scatter plan missing scatter line:\n%s", p)
	}
	if p := plan(`EXPLAIN SELECT name FROM emp WHERE id IN (1, 2, 3)`); !strings.Contains(p, "groups") {
		t.Fatalf("IN plan missing routing line:\n%s", p)
	}

	if _, err := db.Exec(`UPDATE emp SET id = 9 WHERE salary = 10`); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("shard-key update: %v", err)
	}
	if _, err := db.Exec(`UPDATE emp SET salary = 9 WHERE id = 3`); err != nil {
		t.Fatalf("non-key update: %v", err)
	}
	if _, err := db.Exec(`SELECT * FROM missing`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing table: %v", err)
	}
	if tables := db.Tables(); len(tables) != 1 || tables[0] != "emp" {
		t.Fatalf("Tables() = %v", tables)
	}
}
