// Quickstart: the paper's Figure 1 scenario end to end — outsource an
// employee table to three Database Service Providers as shares, then query
// it back with exact-match, range, and aggregate queries. No provider ever
// sees a name or a salary.
package main

import (
	"fmt"
	"log"

	"sssdb"
)

func main() {
	// Three providers, any two of which can answer a query (n=3, k=2 —
	// Figure 1's configuration). The master key is the paper's secret
	// information X: it derives the evaluation points and never leaves the
	// client.
	cluster, err := sssdb.OpenLocal(3, sssdb.Options{
		K:         2,
		MasterKey: []byte("quickstart master key — keep me safe"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client

	must := func(q string) *sssdb.Result {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatalf("%s\n  -> %v", q, err)
		}
		return res
	}

	fmt.Println("== outsourcing the Employees table ==")
	must(`CREATE TABLE employees (name VARCHAR(8), salary INT)`)
	must(`INSERT INTO employees VALUES
		('JOHN', 10000), ('ALICE', 20000), ('BOB', 40000),
		('CAROL', 60000), ('DAVE', 80000), ('JOHN', 35000)`)
	fmt.Println("6 rows split into shares across 3 providers")

	fmt.Println("\n== exact match: employees named JOHN ==")
	res := must(`SELECT name, salary FROM employees WHERE name = 'JOHN'`)
	printRows(res)

	fmt.Println("\n== range: salaries between 10K and 40K (the paper's example) ==")
	res = must(`SELECT name, salary FROM employees WHERE salary BETWEEN 10000 AND 40000`)
	printRows(res)

	fmt.Println("\n== aggregates over a range ==")
	res = must(`SELECT COUNT(*), SUM(salary), AVG(salary), MEDIAN(salary)
		FROM employees WHERE salary BETWEEN 10000 AND 60000`)
	printRows(res)

	st := db.Stats()
	fmt.Printf("\ntotal traffic: %d calls, %d bytes sent, %d bytes received\n",
		st.Calls, st.BytesSent, st.BytesReceived)
	fmt.Println("every byte of it was shares — run with a debugger and look.")
}

func printRows(res *sssdb.Result) {
	fmt.Println("  ", res.Columns)
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Format()
		}
		fmt.Println("  ", parts)
	}
}
