// PIR: Sec. II-B's private information retrieval protocols side by side.
// Retrieve "the i-th record without the server discovering i" under four
// schemes and print what each costs — reproducing both the replication
// route to sub-linear communication and Sion & Carbunar's observation that
// computational PIR loses to simply shipping the database.
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	mrand "math/rand"
	"time"

	"sssdb/internal/pir"
)

func main() {
	const n = 1 << 12 // 4096 records
	const recSize = 32
	rng := mrand.New(mrand.NewSource(7))
	records := make([][]byte, n)
	for i := range records {
		rec := make([]byte, recSize)
		rng.Read(rec)
		records[i] = rec
	}
	db, err := pir.NewDatabase(records)
	if err != nil {
		log.Fatal(err)
	}
	target := 1234
	want := db.Record(target)
	fmt.Printf("database: %d records × %d bytes; privately retrieving record %d\n\n",
		n, recSize, target)
	fmt.Printf("%-28s %-8s %-10s %-10s %-10s %s\n",
		"scheme", "servers", "upload", "download", "time", "correct")

	report := func(name string, servers int, st pir.Stats, dur time.Duration, got []byte) {
		fmt.Printf("%-28s %-8d %-10d %-10d %-10s %v\n",
			name, servers, st.Upload, st.Download, dur.Round(time.Microsecond), pir.Equal(got, want))
	}

	start := time.Now()
	got, st, err := pir.Trivial(db, target)
	if err != nil {
		log.Fatal(err)
	}
	report("trivial (ship everything)", st.Servers, st, time.Since(start), got)

	start = time.Now()
	got, st, err = pir.TwoServerMatrix(db, target, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	report("2-server matrix O(√N)", st.Servers, st, time.Since(start), got)

	start = time.Now()
	got, st, err = pir.Subcube(db, 3, target, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	report("8-server subcube O(N^⅓)", st.Servers, st, time.Since(start), got)

	// cPIR on a (much) smaller database — per bit it is already slow, which
	// is the point.
	scheme, err := pir.NewQRScheme(256, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	bits := make([]byte, 512) // 4096 bits
	rng.Read(bits)
	bitIdx := 2222
	start = time.Now()
	bit, bst, muls, err := scheme.RetrieveBit(bits, 4096, bitIdx, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	wantBit := bits[bitIdx/8]&(1<<(bitIdx%8)) != 0
	fmt.Printf("%-28s %-8d %-10d %-10d %-10s %v  (%d modmuls for ONE bit)\n",
		"QR cPIR, 4096-bit DB", bst.Servers, bst.Upload, bst.Download,
		time.Since(start).Round(time.Microsecond), bit == wantBit, muls)

	fmt.Println("\ntakeaways (the paper's Sec. II-B):")
	fmt.Println(" - replication buys sub-linear communication (2-server ≪ trivial for large N)")
	fmt.Println(" - more servers push communication lower (subcube family)")
	fmt.Println(" - computational single-server PIR pays Θ(N) modular multiplications per bit —")
	fmt.Println("   slower than shipping the whole database, as Sion & Carbunar measured")
}
