// Medical: the Sec. V-A join scenario (Employees ⋈ Managers becomes
// Patients ⋈ Treatments on a shared-domain key), encrypted BLOB payloads,
// verified reads, and detection of a malicious provider via Audit — the
// paper's trust challenge exercised end to end.
package main

import (
	"fmt"
	"log"

	"sssdb"
)

func main() {
	cluster, err := sssdb.OpenLocal(4, sssdb.Options{
		K:         2,
		MasterKey: []byte("medical records master key"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client

	must := func(q string) *sssdb.Result {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatalf("%s\n  -> %v", q, err)
		}
		return res
	}

	// pid is an INT in both tables: same domain, so the equijoin runs AT
	// the providers, in share space (the paper's referential-key join).
	must(`CREATE TABLE patients (pid INT, name VARCHAR(8), age INT, notes BLOB)`)
	must(`CREATE TABLE treatments (pid INT, drug INT, cost DECIMAL(2))`)
	must(`INSERT INTO patients VALUES
		(1, 'IVAN', 54, 'history of hypertension'),
		(2, 'JUDY', 41, 'allergic to penicillin'),
		(3, 'KEVIN', 67, 'post-op followup'),
		(4, 'LAURA', 33, 'routine checkup')`)
	must(`INSERT INTO treatments VALUES
		(1, 101, 250.00), (1, 205, 75.50),
		(2, 101, 250.00),
		(3, 309, 1200.00), (3, 101, 250.00)`)

	fmt.Println("== provider-side join: treatments with patient names ==")
	printRows(must(`SELECT patients.name, treatments.drug, treatments.cost
		FROM patients JOIN treatments ON patients.pid = treatments.pid
		WHERE patients.age > 50`))

	fmt.Println("\n== BLOB notes are AES-GCM sealed before leaving the client ==")
	res := must(`SELECT notes FROM patients WHERE name = 'JUDY'`)
	fmt.Printf("   decrypted note: %s\n", res.Rows[0][0].B)

	fmt.Println("\n== verified read: Merkle proofs + robust reconstruction ==")
	res = must(`SELECT name, age FROM patients WHERE age BETWEEN 30 AND 70 VERIFIED`)
	fmt.Printf("   %d rows, verified=%v\n", len(res.Rows), res.Verified)

	fmt.Println("\n== provider 2 turns malicious (flips share bits) ==")
	cluster.CorruptProvider(2, true)
	report, err := db.Audit("patients")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   audit: %d rows verified, faulty providers identified: %v\n",
		report.Rows, report.Faulty)
	fmt.Println("   queries still answer correctly from the honest majority:")
	printRows(must(`SELECT name FROM patients WHERE age = 41 VERIFIED`))
	cluster.CorruptProvider(2, false)

	fmt.Println("\n== updates: reconstruct, re-share, redistribute (Sec. V-C) ==")
	must(`UPDATE treatments SET cost = 199.99 WHERE drug = 101`)
	printRows(must(`SELECT SUM(cost) FROM treatments`))
}

func printRows(res *sssdb.Result) {
	fmt.Println("  ", res.Columns)
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Format()
		}
		fmt.Println("  ", parts)
	}
}
