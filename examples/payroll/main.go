// Payroll: a realistic departmental payroll workload — decimals, string
// prefixes, conjunctive predicates, and provider-side aggregation — that
// keeps working while providers crash (the k-of-n availability dividend of
// Sec. V-A's range-query discussion).
package main

import (
	"fmt"
	"log"

	"sssdb"
)

func main() {
	// Five providers, threshold three: reads survive two crashes.
	cluster, err := sssdb.OpenLocal(5, sssdb.Options{
		K:         3,
		MasterKey: []byte("payroll master key"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client

	must := func(q string) *sssdb.Result {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatalf("%s\n  -> %v", q, err)
		}
		return res
	}

	must(`CREATE TABLE payroll (name VARCHAR(8), dept INT, salary DECIMAL(2))`)
	must(`INSERT INTO payroll VALUES
		('ANDERS', 1, 84000.50), ('ANNIKA', 1, 92000.00), ('BORIS', 1, 61000.25),
		('CHLOE', 2, 115000.00), ('CARLOS', 2, 99000.75), ('DMITRI', 2, 87500.00),
		('ELENA', 3, 132000.00), ('EMIL', 3, 76000.00), ('FRIDA', 3, 98000.00),
		('ANTON', 2, 70500.10)`)

	fmt.Println("== names starting with AN (LIKE compiled to a share-range) ==")
	printRows(must(`SELECT name, dept, salary FROM payroll WHERE name LIKE 'AN%'`))

	fmt.Println("\n== dept 2 engineers in a salary band (conjunction) ==")
	printRows(must(`SELECT name, salary FROM payroll
		WHERE salary BETWEEN 80000.00 AND 120000.00 AND dept = 2`))

	fmt.Println("\n== payroll totals per the provider-side SUM shares ==")
	printRows(must(`SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM payroll`))

	fmt.Println("\n== per-department totals: grouped partials computed AT the providers ==")
	printRows(must(`SELECT dept, COUNT(*), SUM(salary), AVG(salary) FROM payroll GROUP BY dept`))

	fmt.Println("\n== crash two providers; queries keep answering (k=3 of n=5) ==")
	cluster.CrashProvider(0)
	cluster.CrashProvider(3)
	printRows(must(`SELECT MEDIAN(salary) FROM payroll WHERE dept = 1`))

	fmt.Println("\n== a third crash exceeds the threshold ==")
	cluster.CrashProvider(4)
	if _, err := db.Exec(`SELECT COUNT(*) FROM payroll`); err != nil {
		fmt.Println("  query failed as expected:", err)
	}
	cluster.RecoverProvider(0)
	cluster.RecoverProvider(3)
	cluster.RecoverProvider(4)
	fmt.Println("\n== all providers recovered; raises applied eagerly ==")
	fmt.Println("   (writes must reach every provider so no share set goes stale)")
	must(`UPDATE payroll SET salary = 95000.00 WHERE name = 'BORIS'`)
	printRows(must(`SELECT name, salary FROM payroll WHERE name = 'BORIS'`))
}

func printRows(res *sssdb.Result) {
	fmt.Println("  ", res.Columns)
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Format()
		}
		fmt.Println("  ", parts)
	}
}
