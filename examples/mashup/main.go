// Mashup: Sec. V-D's private/public data scenario. A client keeps a
// private table of friends (names, zip codes) and the provider also hosts
// a public restaurant directory. The client asks for "restaurants near my
// friend" — the join happens AT the provider, in share space, so the
// provider learns neither which friend, which zip, nor which restaurants
// matched. The section's FBI/TSA watch-list intersection is the same query
// shape.
package main

import (
	"fmt"
	"log"

	"sssdb"
)

func main() {
	cluster, err := sssdb.OpenLocal(3, sssdb.Options{
		K:         2,
		MasterKey: []byte("mashup master key"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	db := cluster.Client

	must := func(q string) *sssdb.Result {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatalf("%s\n  -> %v", q, err)
		}
		return res
	}

	// Private data: my friends. zip shares the INT domain with the public
	// table, which is exactly what makes the provider-side join possible.
	must(`CREATE TABLE friends (name VARCHAR(8), zip INT)`)
	must(`INSERT INTO friends VALUES
		('ANN', 94103), ('BEN', 10001), ('CARLA', 94103), ('DAN', 60601)`)

	// Public data: a restaurant directory anyone may read. The BLOB info
	// stays plaintext (PUBLIC table); the queryable zip column is shared
	// like everything else so it can join against private data.
	must(`CREATE PUBLIC TABLE restaurants (rname VARCHAR(10), zip INT, info BLOB)`)
	must(`INSERT INTO restaurants VALUES
		('LUIGIS', 94103, 'pizza, open late'),
		('SAKURA', 94103, 'sushi'),
		('SCHNITZEL', 10001, 'austrian'),
		('TACOS', 60601, 'food truck'),
		('BISTRO', 30301, 'french')`)

	fmt.Println("== restaurants near ANN (provider never learns it's Ann or 94103) ==")
	printRows(must(`SELECT restaurants.rname, restaurants.info
		FROM friends JOIN restaurants ON friends.zip = restaurants.zip
		WHERE friends.name = 'ANN'`))

	fmt.Println("\n== watch-list shape: which friends live where some restaurant is ==")
	printRows(must(`SELECT friends.name, restaurants.rname
		FROM friends JOIN restaurants ON friends.zip = restaurants.zip`))

	st := db.Stats()
	fmt.Printf("\ntraffic: %d calls, %d bytes — all shares and sealed payloads\n",
		st.Calls, st.BytesSent+st.BytesReceived)
}

func printRows(res *sssdb.Result) {
	fmt.Println("  ", res.Columns)
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Format()
		}
		fmt.Println("  ", parts)
	}
}
