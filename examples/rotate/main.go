// Rotate: key rotation / provider migration. If the data source suspects
// its master key (the paper's secret information X) leaked — or simply
// wants to move to a new provider fleet — it reconstructs each table once
// and re-outsources it under a fresh key: new evaluation points, new
// coefficient hashes, freshly randomized field shares. The old providers'
// stores become useless to anyone holding the old key alone.
package main

import (
	"fmt"
	"log"

	"sssdb"
)

func main() {
	oldCluster, err := sssdb.OpenLocal(3, sssdb.Options{
		K:         2,
		MasterKey: []byte("OLD key — presumed compromised"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer oldCluster.Close()
	oldDB := oldCluster.Client

	must := func(db *sssdb.Client, q string) *sssdb.Result {
		res, err := db.Exec(q)
		if err != nil {
			log.Fatalf("%s\n  -> %v", q, err)
		}
		return res
	}
	must(oldDB, `CREATE TABLE accounts (owner VARCHAR(8), balance DECIMAL(2))`)
	must(oldDB, `INSERT INTO accounts VALUES
		('ALICE', 1200.50), ('BOB', 88.00), ('CAROL', 4310.75)`)
	fmt.Println("old fleet loaded: 3 accounts under the old key")

	// New fleet (could be entirely different providers), new key.
	newCluster, err := sssdb.OpenLocal(3, sssdb.Options{
		K:         2,
		MasterKey: []byte("NEW key, freshly generated"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer newCluster.Close()
	newDB := newCluster.Client
	must(newDB, `CREATE TABLE accounts (owner VARCHAR(8), balance DECIMAL(2))`)

	// Rotation = reconstruct once, re-share under the new key.
	rows := must(oldDB, `SELECT owner, balance FROM accounts`)
	migrated := make([][]sssdb.Value, len(rows.Rows))
	copy(migrated, rows.Rows)
	if _, err := newDB.InsertValues("accounts", migrated); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-shared %d rows under the new key\n", len(migrated))

	// The new fleet answers; shares are unrelated to the old ones.
	res := must(newDB, `SELECT owner, balance FROM accounts WHERE balance > 100.00 ORDER BY balance DESC`)
	fmt.Println("query on the rotated fleet:")
	for _, row := range res.Rows {
		fmt.Printf("  %s  %s\n", row[0].Format(), row[1].Format())
	}

	// Decommission the old fleet.
	must(oldDB, `DROP TABLE accounts`)
	fmt.Println("old table dropped; rotation complete")
}
