# sssdb build targets. Everything is pure Go stdlib; no tool dependencies
# beyond the Go toolchain.

GO ?= go

.PHONY: all build vet test race bench experiments experiments-full fmt clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's experiment tables (quick sizes).
experiments:
	$(GO) run ./cmd/ssbench

# Full-size experiment run (minutes).
experiments-full:
	$(GO) run ./cmd/ssbench -full

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
