# sssdb build targets. Everything is pure Go stdlib; no tool dependencies
# beyond the Go toolchain.

GO ?= go

.PHONY: all build vet test race race-txn race-hedge bench bench-s6 bench-s7 bench-s8 experiments experiments-full fmt clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the transaction paths: the client-side 2PC and
# snapshot machinery plus the randomized concurrent-transaction differential
# (interleaved workers vs a serial oracle, plain and sharded).
race-txn:
	$(GO) test -race -count=1 -run 'TestTx|TestWatermark|TestSharded' ./internal/client
	$(GO) test -race -count=1 -run 'TestTx' .

# Focused race pass over the tail-tolerance paths: hedged buffered and
# streaming reads, health scoring, end-to-end deadlines, the flapping
# provider's repair loop, and the deadline-aware transport.
race-hedge:
	$(GO) test -race -count=1 -run 'TestHedge|TestNoHedges|TestHealth|TestCircuit|TestDynamic|TestReadDeadline|TestRepairFlapping' ./internal/client
	$(GO) test -race -count=1 -run 'TestFaulty|TestWaitBackoff|TestCallDeadline|TestLocalConn|TestDelaySchedule' ./internal/transport

bench:
	$(GO) test -bench=. -benchmem ./...

# Sustained-load serving suite with machine-readable output for trend
# tracking (admission control, overload shedding, tenant fairness).
bench-s6:
	$(GO) run ./cmd/ssbench -only S6 -json BENCH_S6.json

# Transaction suite: 2PC commit latency and abort rate under contention,
# with machine-readable output for trend tracking.
bench-s7:
	$(GO) run ./cmd/ssbench -only S7 -json BENCH_S7.json

# Tail-tolerance suite: gray-failure straggler vs healthy p99, hedge
# counters, and the end-to-end deadline scenario, with machine-readable
# output for trend tracking.
bench-s8:
	$(GO) run ./cmd/ssbench -only S8 -json BENCH_S8.json

# Regenerate the paper's experiment tables (quick sizes).
experiments:
	$(GO) run ./cmd/ssbench

# Full-size experiment run (minutes).
experiments-full:
	$(GO) run ./cmd/ssbench -full

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
