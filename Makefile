# sssdb build targets. Everything is pure Go stdlib; no tool dependencies
# beyond the Go toolchain.

GO ?= go

.PHONY: all build vet test race bench bench-s6 experiments experiments-full fmt clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Sustained-load serving suite with machine-readable output for trend
# tracking (admission control, overload shedding, tenant fairness).
bench-s6:
	$(GO) run ./cmd/ssbench -only S6 -json BENCH_S6.json

# Regenerate the paper's experiment tables (quick sizes).
experiments:
	$(GO) run ./cmd/ssbench

# Full-size experiment run (minutes).
experiments-full:
	$(GO) run ./cmd/ssbench -full

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
